"""The :class:`Relation` value type: an immutable named-column set of tuples.

This is the substrate every algorithm in the library runs on.  A relation is
a set of rows (Python tuples of hashable values) together with an ordered
tuple of distinct attribute names, one per column.  All operations are
functional: they return new relations and never mutate their inputs, which
keeps the evaluation algorithms (Yannakakis passes, the Theorem 2 bottom-up
merge) easy to reason about and safe to share.

Set semantics are used throughout, matching the paper's model of relational
databases (no duplicate tuples, no ordering).

Kernel notes (see ``docs/kernel.md`` for the full contract):

* construction goes through an explicit family: :meth:`Relation.from_rows`
  (validated), :meth:`Relation.from_columns` (validated, column-major), and
  the *trusted* :meth:`Relation._from_frozen` fast path, which does not
  validate and through which every algebra operation builds its result so
  rows are frozen and validated exactly once.  The legacy positional
  ``Relation(attributes, rows)`` form still works but warns
  ``DeprecationWarning``;
* the backing store is columnar: each relation lazily dictionary-encodes
  its columns against the process-wide value pool (``relational.columns``)
  into one code array per attribute.  Code equality is value equality
  across all relations, so the kernel ops — semijoin/antijoin membership,
  join bucketing, projection dedup, partition routing — run over small-int
  code arrays instead of re-hashing row values.  Operations that filter or
  slice rows (semijoin, projection) hand their result the selected code
  arrays, so derived relations never pay the encoding again;
* each relation also lazily caches value-keyed hash indexes (column
  positions → key → rows) in :meth:`Relation._index`; ``select_eq`` and the
  explicit index views probe these.  Relations are immutable, so cached
  indexes and code columns are never invalidated;
* operations that permute or rename columns without touching rows
  (``rename``, and the candidate-relation fast path) share the source
  relation's index and column caches, since positional caches only depend
  on rows;
* the parallel execution layer (``repro.parallel``) shards relations by
  join-key *code* through :meth:`Relation._partition`, a lazy cache exactly
  like :meth:`Relation._index`: shards are built from the cached index on
  the key positions, each shard is born with that index preseeded, and —
  relations being immutable — a cached partition is never invalidated.
  Routing by pool code (``key_code % count``) keeps join-compatible
  relations co-partitioned, because codes are global to the process;
* all lazy caches are safe to fill from concurrent threads (the shared
  engine behind ``repro.service`` does): fills race only on *cold* slots,
  every racer builds an equivalent value from the immutable rows, and the
  publish goes through ``dict.setdefault`` so all callers converge on one
  canonical object (CPython's per-opcode atomicity makes the setdefault
  itself atomic);
* pickling drops the columnar caches: pool codes are meaningless in
  another process (each process grows its own pools), so a shipped
  relation re-encodes lazily on the receiving side.  Value-keyed index
  and partition caches travel, exactly as before.
"""

from __future__ import annotations

import warnings
from array import array
from operator import itemgetter
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Sequence,
    Tuple,
)

from ..errors import ArityError, SchemaError
from .attributes import check_attribute_names, positions_of
from .columns import CODE_TYPECODE, KEYS, VALUES, select_codes, values_equal

Row = Tuple[Any, ...]

#: positions → (key → tuple of rows).  Keys are raw values for
#: single-position indexes and tuples of values otherwise.
IndexBuckets = Dict[Any, Tuple[Row, ...]]

_EMPTY_ROWSET: FrozenSet[Row] = frozenset()

_DEPRECATED_INIT = (
    "positional Relation(attributes, rows) construction is deprecated; use "
    "Relation.from_rows(...) / Relation.from_columns(...) (or the trusted "
    "Relation._from_frozen fast path for pre-validated frozensets)"
)


class Relation:
    """An immutable relation with named columns and set-of-tuples contents.

    Build relations through the explicit constructor family:
    :meth:`from_rows` (row-major, validated), :meth:`from_columns`
    (column-major, validated), :meth:`from_dicts`, :meth:`unit`,
    :meth:`empty`, or — for trusted pre-frozen data — :meth:`_from_frozen`.
    The legacy positional form ``Relation(attributes, rows)`` still works
    but emits :class:`DeprecationWarning`.

    Examples
    --------
    >>> r = Relation.from_rows(("a", "b"), [(1, 2), (1, 3)])
    >>> r.project(("a",)).rows
    frozenset({(1,)})
    """

    __slots__ = ("_attributes", "_rows", "_indexes", "_partitions", "_columnar")

    def __init__(self, attributes: Sequence[str], rows: Iterable[Row] = ()) -> None:
        warnings.warn(_DEPRECATED_INIT, DeprecationWarning, stacklevel=2)
        validated = Relation.from_rows(attributes, rows)
        self._attributes = validated._attributes
        self._rows = validated._rows
        self._indexes = {}
        self._partitions = {}
        self._columnar = {}

    # ------------------------------------------------------------------
    # Trusted constructor + lazy caches (the kernel's internal contract)
    # ------------------------------------------------------------------

    @classmethod
    def _from_frozen(
        cls, attributes: Tuple[str, ...], rows: FrozenSet[Row]
    ) -> "Relation":
        """Trusted constructor: no validation, no re-freezing.

        Contract — the caller guarantees that *attributes* is a tuple of
        pairwise-distinct nonempty strings (e.g. taken from an existing
        relation or passed through :func:`check_attribute_names`) and that
        *rows* is a frozenset of tuples whose length equals
        ``len(attributes)``.  Every algebra operation routes its result
        through here so each row is tupled, checked and frozen exactly once,
        at the boundary where it first enters the system.
        """
        self = object.__new__(cls)
        self._attributes = attributes
        self._rows = rows
        self._indexes = {}
        self._partitions = {}
        self._columnar = {}
        return self

    def __getstate__(self):
        # The columnar caches hold process-local pool codes; they must not
        # cross a pickle boundary (a worker process has different pools).
        # Value-keyed index/partition caches remain valid anywhere.
        return (self._attributes, self._rows, self._indexes, self._partitions)

    def __setstate__(self, state) -> None:
        self._attributes, self._rows, self._indexes, self._partitions = state
        self._columnar = {}

    def _index(self, positions: Tuple[int, ...]) -> IndexBuckets:
        """The cached hash index on *positions* (built on first use).

        Maps each key — ``row[p]`` for a single position, ``tuple(row[p]
        for p in positions)`` otherwise — to the tuple of rows having that
        key.  The empty position tuple indexes everything under ``()``.
        Relations are immutable, so the cache is never invalidated.
        """
        found = self._indexes.get(positions)
        if found is not None:
            return found
        buckets: Dict[Any, List[Row]] = {}
        if len(positions) == 1:
            (p,) = positions
            for row in self._rows:
                key = row[p]
                bucket = buckets.get(key)
                if bucket is None:
                    buckets[key] = [row]
                else:
                    bucket.append(row)
        elif not positions:
            if self._rows:
                buckets[()] = list(self._rows)
        else:
            getter = itemgetter(*positions)
            for row in self._rows:
                key = getter(row)
                bucket = buckets.get(key)
                if bucket is None:
                    buckets[key] = [row]
                else:
                    bucket.append(row)
        frozen_buckets: IndexBuckets = {k: tuple(v) for k, v in buckets.items()}
        # Publish with setdefault: two threads filling the same cold slot
        # concurrently (the shared-engine service does this) both built the
        # same buckets, and every caller must agree on ONE canonical object
        # so downstream identity checks and shard preseeds stay consistent.
        return self._indexes.setdefault(positions, frozen_buckets)

    # -- columnar store -------------------------------------------------

    def _row_order(self) -> Tuple[Row, ...]:
        """The rows in one fixed (arbitrary) order; code arrays align to it."""
        found = self._columnar.get("order")
        if found is None:
            found = self._columnar.setdefault("order", tuple(self._rows))
        return found

    def _code_column(self, position: int) -> array:
        """Pool codes of column *position*, aligned with :meth:`_row_order`."""
        key = ("col", position)
        found = self._columnar.get(key)
        if found is None:
            order = self._row_order()
            column = VALUES.encode_column([row[position] for row in order])
            found = self._columnar.setdefault(key, column)
        return found

    def _key_codes(self, positions: Tuple[int, ...]) -> array:
        """Per-row join-key codes on *positions* (value code for a single
        position, composite KEYS code otherwise), aligned with
        :meth:`_row_order`.  Codes are process-global: equal keys get equal
        codes in every relation."""
        if len(positions) == 1:
            return self._code_column(positions[0])
        key = ("key", positions)
        found = self._columnar.get(key)
        if found is None:
            if positions:
                columns = [self._code_column(p) for p in positions]
                found = KEYS.encode_column(list(zip(*columns)))
            else:
                unit_code = KEYS.encode(())
                found = array(CODE_TYPECODE, [unit_code]) * len(self._rows)
            found = self._columnar.setdefault(key, found)
        return found

    def _key_code_set(self, positions: Tuple[int, ...]) -> frozenset:
        """The distinct key codes on *positions* (semijoin build side)."""
        key = ("keyset", positions)
        found = self._columnar.get(key)
        if found is None:
            found = self._columnar.setdefault(
                key, frozenset(self._key_codes(positions))
            )
        return found

    def _code_buckets(self, positions: Tuple[int, ...]) -> Dict[int, Tuple[Row, ...]]:
        """Key code → rows with that key (join build side; int-keyed twin of
        :meth:`_index`)."""
        cache_key = ("buckets", positions)
        found = self._columnar.get(cache_key)
        if found is None:
            buckets: Dict[int, List[Row]] = {}
            for row, code in zip(self._row_order(), self._key_codes(positions)):
                bucket = buckets.get(code)
                if bucket is None:
                    buckets[code] = [row]
                else:
                    bucket.append(row)
            frozen = {code: tuple(rows) for code, rows in buckets.items()}
            found = self._columnar.setdefault(cache_key, frozen)
        return found

    def _take(self, order: Tuple[Row, ...], indices: List[int]) -> "Relation":
        """A relation of ``order[i] for i in indices`` over the same
        attributes, inheriting the selected code arrays so the child never
        re-encodes what this relation already paid for.

        Trusted: *indices* must be distinct positions into *order*, which
        must be this relation's row order.
        """
        kept = tuple(map(order.__getitem__, indices))
        child = Relation._from_frozen(self._attributes, frozenset(kept))
        child._columnar["order"] = kept
        for cache_key, column in list(self._columnar.items()):
            if type(cache_key) is tuple and cache_key[0] in ("col", "key"):
                child._columnar[cache_key] = select_codes(column, indices)
        return child

    def _partition(
        self, positions: Tuple[int, ...], count: int
    ) -> Tuple["Relation", ...]:
        """Hash-partition into *count* shards by the key on *positions*.

        Shard ``s`` holds the rows whose join-key *pool code* is ``s``
        modulo *count* (the value code for a single position, the composite
        KEYS code otherwise — see ``relational.columns``).  Built from the
        cached index on *positions* — whole buckets are routed, so every
        key lands in exactly one shard, and because pool codes are global
        to the process, two relations partitioned on join-compatible keys
        with equal *count* are co-partitioned: matching keys meet in the
        same shard index.  Each shard is a full :class:`Relation` over the
        same attributes, created with its index on *positions* preseeded
        from the routed buckets (sharding never pays the index build
        twice).  Like :meth:`_index`, the result is cached for the
        relation's lifetime and never invalidated.
        """
        if count < 1:
            raise ValueError(f"partition count must be >= 1, got {count}")
        cache_key = (positions, count)
        found = self._partitions.get(cache_key)
        if found is not None:
            return found
        routed: List[Dict[Any, Tuple[Row, ...]]] = [{} for _ in range(count)]
        if len(positions) == 1:
            encode = VALUES.encode
            for key, bucket in self._index(positions).items():
                routed[encode(key) % count][key] = bucket
        else:
            value_code = VALUES.encode
            key_code = KEYS.encode
            for key, bucket in self._index(positions).items():
                code = key_code(tuple(value_code(v) for v in key))
                routed[code % count][key] = bucket
        shards = []
        for shard_buckets in routed:
            rows = frozenset(
                row for bucket in shard_buckets.values() for row in bucket
            )
            shard = Relation._from_frozen(self._attributes, rows)
            shard._indexes[positions] = shard_buckets
            shards.append(shard)
        frozen_shards = tuple(shards)
        # setdefault, like _index: concurrent cold fills converge on one
        # canonical shard tuple (first writer wins, later fills discarded).
        return self._partitions.setdefault(cache_key, frozen_shards)

    @staticmethod
    def _key_getter(positions: Tuple[int, ...]) -> Callable[[Row], Any]:
        """Row → index key, matching :meth:`_index`'s key convention."""
        if len(positions) == 1:
            (p,) = positions
            return lambda row: row[p]
        if not positions:
            return lambda row: ()
        return itemgetter(*positions)

    def _share_indexes_with(self, other: "Relation") -> "Relation":
        """Share *other*'s index + columnar caches (caller guarantees
        identical rows).

        The partition cache is *not* shared: cached shards are Relations
        carrying their source's attribute names, which a rename-shaped twin
        must not inherit.  Positional indexes and code columns only depend
        on rows, so both transfer.
        """
        self._indexes = other._indexes
        self._columnar = other._columnar
        return self

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def attributes(self) -> Tuple[str, ...]:
        """The ordered tuple of column names."""
        return self._attributes

    @property
    def rows(self) -> FrozenSet[Row]:
        """The set of rows, as a frozenset of tuples."""
        return self._rows

    @property
    def arity(self) -> int:
        """Number of columns."""
        return len(self._attributes)

    @property
    def cardinality(self) -> int:
        """Number of rows."""
        return len(self._rows)

    def is_empty(self) -> bool:
        """True iff the relation holds no rows."""
        return not self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: Row) -> bool:
        return tuple(row) in self._rows

    def __eq__(self, other: object) -> bool:
        """Equality is schema-sensitive but column-order-insensitive.

        Two relations are equal when they have the same attribute *set* and,
        after aligning column order, the same rows.
        """
        if not isinstance(other, Relation):
            return NotImplemented
        if set(self._attributes) != set(other._attributes):
            return False
        if self._attributes == other._attributes:
            return self._rows == other._rows
        aligned = other.project(self._attributes)
        return self._rows == aligned._rows

    def __hash__(self) -> int:
        # Order-insensitive: hash over the canonical column order.
        canonical = tuple(sorted(self._attributes))
        if canonical == self._attributes:
            rows = self._rows
        else:
            rows = self.project(canonical)._rows
        return hash((canonical, rows))

    def __repr__(self) -> str:
        preview = sorted(self._rows, key=repr)[:4]
        suffix = ", ..." if len(self._rows) > 4 else ""
        return (
            f"Relation({self._attributes!r}, {len(self._rows)} rows: "
            f"{preview!r}{suffix})"
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_rows(
        cls, attributes: Sequence[str], rows: Iterable[Row] = ()
    ) -> "Relation":
        """The validated row-major constructor.

        *attributes* are checked to be distinct nonempty strings; every row
        is tupled, checked against the arity, and frozen.  This is the
        public entry point for untrusted data — algebra results use the
        trusted :meth:`_from_frozen` fast path instead.
        """
        names = check_attribute_names(attributes)
        arity = len(names)
        frozen = frozenset(tuple(row) for row in rows)
        for row in frozen:
            if len(row) != arity:
                raise ArityError(
                    f"row {row!r} has arity {len(row)}, expected {arity}"
                )
        return cls._from_frozen(names, frozen)

    @classmethod
    def from_columns(
        cls, attributes: Sequence[str], columns: Sequence[Iterable[Any]]
    ) -> "Relation":
        """The validated column-major constructor: one value sequence per
        attribute, all of equal length.

        ``from_columns((), ())`` is the empty nullary relation (FALSE); the
        nullary TRUE relation has no column-major spelling — use
        :meth:`unit`.
        """
        names = check_attribute_names(attributes)
        materialized = [tuple(column) for column in columns]
        if len(materialized) != len(names):
            raise SchemaError(
                f"{len(names)} attributes but {len(materialized)} columns"
            )
        lengths = {len(column) for column in materialized}
        if len(lengths) > 1:
            raise ArityError(
                f"columns have unequal lengths {sorted(lengths)}"
            )
        if not materialized:
            return cls._from_frozen(names, _EMPTY_ROWSET)
        return cls._from_frozen(names, frozenset(zip(*materialized)))

    @classmethod
    def unit(cls) -> "Relation":
        """The nullary relation containing the empty tuple (logical TRUE)."""
        return cls._from_frozen((), frozenset([()]))

    @classmethod
    def empty(cls, attributes: Sequence[str] = ()) -> "Relation":
        """An empty relation over *attributes* (logical FALSE when nullary)."""
        return cls._from_frozen(check_attribute_names(attributes), _EMPTY_ROWSET)

    @classmethod
    def from_dicts(
        cls, attributes: Sequence[str], dicts: Iterable[Mapping[str, Any]]
    ) -> "Relation":
        """Build a relation from mappings ``attribute -> value``."""
        names = tuple(attributes)
        return cls.from_rows(names, (tuple(d[a] for a in names) for d in dicts))

    # ------------------------------------------------------------------
    # Row views
    # ------------------------------------------------------------------

    def iter_dicts(self) -> Iterator[Dict[str, Any]]:
        """Yield each row as an ``attribute -> value`` dict."""
        names = self._attributes
        for row in self._rows:
            yield dict(zip(names, row))

    def column(self, attribute: str) -> FrozenSet[Any]:
        """The set of values appearing in *attribute*'s column."""
        (pos,) = positions_of(self._attributes, (attribute,))
        return frozenset(row[pos] for row in self._rows)

    def active_values(self) -> FrozenSet[Any]:
        """All values appearing anywhere in the relation."""
        return frozenset(v for row in self._rows for v in row)

    # ------------------------------------------------------------------
    # Unary algebra
    # ------------------------------------------------------------------

    def project(self, attributes: Sequence[str]) -> "Relation":
        """Projection π_attributes, preserving the requested column order.

        Duplicate result rows collapse (set semantics).  When the kept
        columns' code arrays are already cached the dedupe runs over key
        codes and value tuples are built only for the distinct rows; a
        cold relation projects its row tuples directly instead of paying
        to intern them.  Projecting onto the empty attribute list yields
        the nullary TRUE/FALSE relation depending on whether any row
        exists.
        """
        names = check_attribute_names(attributes)
        if names == self._attributes:
            return self
        positions = positions_of(self._attributes, names)
        if not positions:
            projected = frozenset([()]) if self._rows else _EMPTY_ROWSET
            return Relation._from_frozen(names, projected)
        columnar = self._columnar
        if ("key", positions) in columnar or all(
            ("col", p) in columnar for p in positions
        ):
            # Codes already exist (a derived relation, or the columns were
            # warmed by a join/semijoin): dedupe by key code — per-row work
            # is one C-level dict insert, and value tuples are built only
            # for one representative row per code (last wins — equal codes
            # mean value-equal projections).  Child code arrays are left
            # to lazy re-encode: every value is already interned, so
            # re-encoding later costs about what preseeding would here.
            order = self._row_order()
            codes = self._key_codes(positions)
            representatives = dict(zip(codes, order)).values()
            if len(positions) == 1:
                (p,) = positions
                projected_rows = tuple(zip(map(itemgetter(p), representatives)))
            else:
                projected_rows = tuple(
                    map(itemgetter(*positions), representatives)
                )
            out = Relation._from_frozen(names, frozenset(projected_rows))
            out._columnar["order"] = projected_rows
            return out
        # Cold relation: interning every value just to dedupe would cost
        # more than the projection itself — let frozenset dedupe the
        # projected tuples directly (value equality, same set semantics).
        if len(positions) == 1:
            (p,) = positions
            projected = frozenset(zip(map(itemgetter(p), self._rows)))
        else:
            projected = frozenset(map(itemgetter(*positions), self._rows))
        return Relation._from_frozen(names, projected)

    def select(self, predicate: Callable[[Dict[str, Any]], bool]) -> "Relation":
        """Selection by an arbitrary row predicate over attribute dicts."""
        names = self._attributes
        kept = frozenset(
            row for row in self._rows if predicate(dict(zip(names, row)))
        )
        return Relation._from_frozen(names, kept)

    def select_eq(self, conditions: Mapping[str, Any]) -> "Relation":
        """Selection σ_{a=c, ...}: keep rows matching every constant condition.

        Probes the relation's cached index on the condition columns, so
        repeated point selections on the same columns are O(result) after
        the first call.
        """
        positions = positions_of(self._attributes, tuple(conditions))
        if len(positions) == 1:
            key: Any = next(iter(conditions.values()))
        else:
            key = tuple(conditions.values())
        try:
            bucket = self._index(positions).get(key, ())
        except TypeError:
            # Unhashable condition value: fall back to the linear scan so
            # exotic equality (a hashable object equal to an unhashable one)
            # behaves exactly as the pre-index kernel did.
            values = tuple(conditions.values())
            bucket = tuple(
                row
                for row in self._rows
                if all(values_equal(row[p], v) for p, v in zip(positions, values))
            )
        return Relation._from_frozen(self._attributes, frozenset(bucket))

    def select_attr_eq(self, left: str, right: str) -> "Relation":
        """Selection σ_{left = right} between two columns."""
        (lp, rp) = positions_of(self._attributes, (left, right))
        return Relation._from_frozen(
            self._attributes,
            frozenset(row for row in self._rows if values_equal(row[lp], row[rp])),
        )

    def select_attr_neq(self, left: str, right: str) -> "Relation":
        """Selection σ_{left ≠ right} between two columns."""
        (lp, rp) = positions_of(self._attributes, (left, right))
        return Relation._from_frozen(
            self._attributes,
            frozenset(
                row for row in self._rows if not values_equal(row[lp], row[rp])
            ),
        )

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        """Rename attributes; names absent from *mapping* are kept.

        Raises :class:`SchemaError` if the renaming would create duplicate
        column names.
        """
        new_names = tuple(mapping.get(a, a) for a in self._attributes)
        if new_names == self._attributes:
            return self
        if len(set(new_names)) != len(new_names):
            raise SchemaError(f"rename produces duplicate attributes: {new_names}")
        out = Relation._from_frozen(check_attribute_names(new_names), self._rows)
        # Rows are untouched, so positional caches remain valid — share them.
        return out._share_indexes_with(self)

    def extend(self, attribute: str, fn: Callable[[Dict[str, Any]], Any]) -> "Relation":
        """Append a computed column named *attribute* with value ``fn(row)``.

        Used by the Theorem 2 algorithms to add hashed shadow attributes
        (``t[x'] = h(t[x])`` in the paper's notation).
        """
        if attribute in self._attributes:
            raise SchemaError(f"attribute {attribute!r} already present")
        names = check_attribute_names(self._attributes + (attribute,))
        old = self._attributes
        return Relation._from_frozen(
            names,
            frozenset(row + (fn(dict(zip(old, row))),) for row in self._rows),
        )

    def _extend_positional(
        self, attribute: str, position: int, fn: Callable[[Any], Any]
    ) -> "Relation":
        """Append column *attribute* = ``fn(row[position])`` (positional fast
        path for single-source computed columns; no per-row dicts)."""
        if attribute in self._attributes:
            raise SchemaError(f"attribute {attribute!r} already present")
        names = check_attribute_names(self._attributes + (attribute,))
        return Relation._from_frozen(
            names, frozenset(row + (fn(row[position]),) for row in self._rows)
        )

    # ------------------------------------------------------------------
    # Binary algebra
    # ------------------------------------------------------------------

    def _check_union_compatible(self, other: "Relation") -> "Relation":
        if set(self._attributes) != set(other._attributes):
            raise SchemaError(
                f"incompatible schemas {self._attributes} vs {other._attributes}"
            )
        if self._attributes != other._attributes:
            return other.project(self._attributes)
        return other

    def union(self, other: "Relation") -> "Relation":
        """Set union; schemas must agree as attribute sets."""
        aligned = self._check_union_compatible(other)
        if not aligned._rows:
            return self
        if not self._rows:
            return aligned
        return Relation._from_frozen(self._attributes, self._rows | aligned._rows)

    def difference(self, other: "Relation") -> "Relation":
        """Set difference; schemas must agree as attribute sets."""
        aligned = self._check_union_compatible(other)
        if not aligned._rows:
            return self
        return Relation._from_frozen(self._attributes, self._rows - aligned._rows)

    def intersection(self, other: "Relation") -> "Relation":
        """Set intersection; schemas must agree as attribute sets."""
        aligned = self._check_union_compatible(other)
        return Relation._from_frozen(self._attributes, self._rows & aligned._rows)

    def natural_join(self, other: "Relation") -> "Relation":
        """Natural join on all shared attribute names (hash join).

        The result's columns are ``self``'s attributes followed by ``other``'s
        non-shared attributes.  With no shared attributes this degenerates to
        the Cartesian product; with identical schemas, to intersection.

        Probing uses *other*'s cached code buckets on the shared positions,
        so repeated joins against the same relation build its hash table
        once — and the table is keyed by small-int pool codes.
        """
        other_set = set(other._attributes)
        shared = tuple(a for a in self._attributes if a in other_set)
        if not shared:
            return self._cartesian_product(other)
        if other_set <= set(self._attributes) and set(
            self._attributes
        ) <= other_set:
            return self.intersection(other)
        return self._join_keep(other, other._attributes)

    def _join_keep(
        self, other: "Relation", other_keep: Sequence[str]
    ) -> "Relation":
        """Fused join-project: ``self ⋈ π_{other_keep}(other)`` in one pass.

        *other_keep* must be a subset of *other*'s attributes containing all
        attributes shared with ``self``.  The projection of *other* is never
        materialized: build-side suffixes are extracted (and deduplicated)
        straight into hash buckets keyed by join-key pool codes, so wide
        build-side intermediates never exist.  This is the kernel behind
        the Yannakakis upward pass and the Theorem 2 bottom-up merges.
        """
        self_attrs = self._attributes
        self_set = set(self_attrs)
        shared = tuple(a for a in self_attrs if a in set(other_keep))
        extra = tuple(a for a in other_keep if a not in self_set)
        if not shared:
            # Degenerate: no join columns survive the projection.
            return self.natural_join(other.project(tuple(other_keep)))
        left_pos = positions_of(self_attrs, shared)
        right_pos = positions_of(other._attributes, shared)

        if tuple(other_keep) == other._attributes:
            # Plain natural join: probe other's cached code buckets.
            extra_pos = positions_of(other._attributes, extra)
            buckets = other._code_buckets(right_pos)
            if len(extra_pos) == 1:
                (ep,) = extra_pos
                suffix_of = lambda row: (row[ep],)  # noqa: E731
            elif not extra_pos:
                suffix_of = lambda row: ()  # noqa: E731
            else:
                suffix_of = itemgetter(*extra_pos)
        else:
            # True fusion: bucket deduplicated kept suffixes, not full rows.
            extra_pos = positions_of(other._attributes, extra)
            if len(extra_pos) == 1:
                (ep,) = extra_pos
                raw_suffix = lambda row: (row[ep],)  # noqa: E731
            elif not extra_pos:
                raw_suffix = lambda row: ()  # noqa: E731
            else:
                raw_suffix = itemgetter(*extra_pos)
            grouped: Dict[int, set] = {}
            for row, code in zip(other._row_order(), other._key_codes(right_pos)):
                group = grouped.get(code)
                if group is None:
                    grouped[code] = {raw_suffix(row)}
                else:
                    group.add(raw_suffix(row))
            buckets = {code: tuple(group) for code, group in grouped.items()}
            suffix_of = lambda suffix: suffix  # noqa: E731

        out: List[Row] = []
        append = out.append
        for row, code in zip(self._row_order(), self._key_codes(left_pos)):
            bucket = buckets.get(code)
            if bucket:
                for item in bucket:
                    append(row + suffix_of(item))
        return Relation._from_frozen(self_attrs + extra, frozenset(out))

    def _cartesian_product(self, other: "Relation") -> "Relation":
        overlap = set(self._attributes) & set(other._attributes)
        if overlap:
            raise SchemaError(f"product requires disjoint schemas; shared: {overlap}")
        names = check_attribute_names(self._attributes + other._attributes)
        rows = frozenset(a + b for a in self._rows for b in other._rows)
        return Relation._from_frozen(names, rows)

    def semijoin(self, other: "Relation") -> "Relation":
        """Semijoin ``self ⋉ other``: rows of self that join with some row of other.

        The schema of the result equals self's schema.  With no shared
        attributes the semijoin keeps everything iff *other* is nonempty.

        Membership is an int probe of *other*'s cached key-code set against
        this relation's key-code array (codes are process-global, so equal
        keys carry equal codes in both relations).  When nothing is
        filtered, ``self`` is returned unchanged so its caches stay live;
        otherwise the result inherits the selected code columns and never
        re-encodes.
        """
        other_set = set(other._attributes)
        shared = tuple(a for a in self._attributes if a in other_set)
        if not shared:
            if other._rows:
                return self
            return Relation._from_frozen(self._attributes, _EMPTY_ROWSET)
        right_keys = other._key_code_set(positions_of(other._attributes, shared))
        codes = self._key_codes(positions_of(self._attributes, shared))
        kept = [i for i, code in enumerate(codes) if code in right_keys]
        if len(kept) == len(codes):
            return self
        return self._take(self._row_order(), kept)

    def antijoin(self, other: "Relation") -> "Relation":
        """Antijoin ``self ▷ other``: rows of self that join with no row of other."""
        other_set = set(other._attributes)
        shared = tuple(a for a in self._attributes if a in other_set)
        if not shared:
            if other._rows:
                return Relation._from_frozen(self._attributes, _EMPTY_ROWSET)
            return self
        right_keys = other._key_code_set(positions_of(other._attributes, shared))
        codes = self._key_codes(positions_of(self._attributes, shared))
        kept = [i for i, code in enumerate(codes) if code not in right_keys]
        if len(kept) == len(codes):
            return self
        return self._take(self._row_order(), kept)
