"""The :class:`Relation` value type: an immutable named-column set of tuples.

This is the substrate every algorithm in the library runs on.  A relation is
a set of rows (Python tuples of hashable values) together with an ordered
tuple of distinct attribute names, one per column.  All operations are
functional: they return new relations and never mutate their inputs, which
keeps the evaluation algorithms (Yannakakis passes, the Theorem 2 bottom-up
merge) easy to reason about and safe to share.

Set semantics are used throughout, matching the paper's model of relational
databases (no duplicate tuples, no ordering).
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import ArityError, SchemaError
from .attributes import check_attribute_names, positions_of

Row = Tuple[Any, ...]


class Relation:
    """An immutable relation with named columns and set-of-tuples contents.

    Parameters
    ----------
    attributes:
        Ordered, pairwise-distinct column names.
    rows:
        Iterable of tuples, each of length ``len(attributes)``.

    Examples
    --------
    >>> r = Relation(("a", "b"), [(1, 2), (1, 3)])
    >>> r.project(("a",)).rows
    frozenset({(1,)})
    """

    __slots__ = ("_attributes", "_rows")

    def __init__(self, attributes: Sequence[str], rows: Iterable[Row] = ()) -> None:
        self._attributes: Tuple[str, ...] = check_attribute_names(attributes)
        arity = len(self._attributes)
        frozen = frozenset(tuple(row) for row in rows)
        for row in frozen:
            if len(row) != arity:
                raise ArityError(
                    f"row {row!r} has arity {len(row)}, expected {arity}"
                )
        self._rows: FrozenSet[Row] = frozen

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def attributes(self) -> Tuple[str, ...]:
        """The ordered tuple of column names."""
        return self._attributes

    @property
    def rows(self) -> FrozenSet[Row]:
        """The set of rows, as a frozenset of tuples."""
        return self._rows

    @property
    def arity(self) -> int:
        """Number of columns."""
        return len(self._attributes)

    @property
    def cardinality(self) -> int:
        """Number of rows."""
        return len(self._rows)

    def is_empty(self) -> bool:
        """True iff the relation holds no rows."""
        return not self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: Row) -> bool:
        return tuple(row) in self._rows

    def __eq__(self, other: object) -> bool:
        """Equality is schema-sensitive but column-order-insensitive.

        Two relations are equal when they have the same attribute *set* and,
        after aligning column order, the same rows.
        """
        if not isinstance(other, Relation):
            return NotImplemented
        if set(self._attributes) != set(other._attributes):
            return False
        if self._attributes == other._attributes:
            return self._rows == other._rows
        aligned = other.project(self._attributes)
        return self._rows == aligned._rows

    def __hash__(self) -> int:
        # Order-insensitive: hash over the canonical column order.
        canonical = tuple(sorted(self._attributes))
        if canonical == self._attributes:
            rows = self._rows
        else:
            rows = self.project(canonical)._rows
        return hash((canonical, rows))

    def __repr__(self) -> str:
        preview = sorted(self._rows, key=repr)[:4]
        suffix = ", ..." if len(self._rows) > 4 else ""
        return (
            f"Relation({self._attributes!r}, {len(self._rows)} rows: "
            f"{preview!r}{suffix})"
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def unit(cls) -> "Relation":
        """The nullary relation containing the empty tuple (logical TRUE)."""
        return cls((), [()])

    @classmethod
    def empty(cls, attributes: Sequence[str] = ()) -> "Relation":
        """An empty relation over *attributes* (logical FALSE when nullary)."""
        return cls(attributes, [])

    @classmethod
    def from_dicts(
        cls, attributes: Sequence[str], dicts: Iterable[Mapping[str, Any]]
    ) -> "Relation":
        """Build a relation from mappings ``attribute -> value``."""
        names = tuple(attributes)
        return cls(names, (tuple(d[a] for a in names) for d in dicts))

    # ------------------------------------------------------------------
    # Row views
    # ------------------------------------------------------------------

    def iter_dicts(self) -> Iterator[Dict[str, Any]]:
        """Yield each row as an ``attribute -> value`` dict."""
        names = self._attributes
        for row in self._rows:
            yield dict(zip(names, row))

    def column(self, attribute: str) -> FrozenSet[Any]:
        """The set of values appearing in *attribute*'s column."""
        (pos,) = positions_of(self._attributes, (attribute,))
        return frozenset(row[pos] for row in self._rows)

    def active_values(self) -> FrozenSet[Any]:
        """All values appearing anywhere in the relation."""
        return frozenset(v for row in self._rows for v in row)

    # ------------------------------------------------------------------
    # Unary algebra
    # ------------------------------------------------------------------

    def project(self, attributes: Sequence[str]) -> "Relation":
        """Projection π_attributes, preserving the requested column order.

        Duplicate result rows collapse (set semantics).  Projecting onto the
        empty attribute list yields the nullary TRUE/FALSE relation depending
        on whether any row exists.
        """
        names = tuple(attributes)
        if names == self._attributes:
            return self
        positions = positions_of(self._attributes, names)
        return Relation(names, (tuple(row[p] for p in positions) for row in self._rows))

    def select(self, predicate: Callable[[Dict[str, Any]], bool]) -> "Relation":
        """Selection by an arbitrary row predicate over attribute dicts."""
        names = self._attributes
        kept = (
            row for row in self._rows if predicate(dict(zip(names, row)))
        )
        return Relation(names, kept)

    def select_eq(self, conditions: Mapping[str, Any]) -> "Relation":
        """Selection σ_{a=c, ...}: keep rows matching every constant condition."""
        positions = positions_of(self._attributes, tuple(conditions))
        values = tuple(conditions[a] for a in conditions)
        kept = (
            row
            for row in self._rows
            if all(row[p] == v for p, v in zip(positions, values))
        )
        return Relation(self._attributes, kept)

    def select_attr_eq(self, left: str, right: str) -> "Relation":
        """Selection σ_{left = right} between two columns."""
        (lp, rp) = positions_of(self._attributes, (left, right))
        return Relation(
            self._attributes, (row for row in self._rows if row[lp] == row[rp])
        )

    def select_attr_neq(self, left: str, right: str) -> "Relation":
        """Selection σ_{left ≠ right} between two columns."""
        (lp, rp) = positions_of(self._attributes, (left, right))
        return Relation(
            self._attributes, (row for row in self._rows if row[lp] != row[rp])
        )

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        """Rename attributes; names absent from *mapping* are kept.

        Raises :class:`SchemaError` if the renaming would create duplicate
        column names.
        """
        new_names = tuple(mapping.get(a, a) for a in self._attributes)
        if len(set(new_names)) != len(new_names):
            raise SchemaError(f"rename produces duplicate attributes: {new_names}")
        return Relation(new_names, self._rows)

    def extend(self, attribute: str, fn: Callable[[Dict[str, Any]], Any]) -> "Relation":
        """Append a computed column named *attribute* with value ``fn(row)``.

        Used by the Theorem 2 algorithms to add hashed shadow attributes
        (``t[x'] = h(t[x])`` in the paper's notation).
        """
        if attribute in self._attributes:
            raise SchemaError(f"attribute {attribute!r} already present")
        names = self._attributes + (attribute,)
        old = self._attributes
        return Relation(
            names, (row + (fn(dict(zip(old, row))),) for row in self._rows)
        )

    # ------------------------------------------------------------------
    # Binary algebra
    # ------------------------------------------------------------------

    def _check_union_compatible(self, other: "Relation") -> "Relation":
        if set(self._attributes) != set(other._attributes):
            raise SchemaError(
                f"incompatible schemas {self._attributes} vs {other._attributes}"
            )
        if self._attributes != other._attributes:
            return other.project(self._attributes)
        return other

    def union(self, other: "Relation") -> "Relation":
        """Set union; schemas must agree as attribute sets."""
        aligned = self._check_union_compatible(other)
        return Relation(self._attributes, self._rows | aligned._rows)

    def difference(self, other: "Relation") -> "Relation":
        """Set difference; schemas must agree as attribute sets."""
        aligned = self._check_union_compatible(other)
        return Relation(self._attributes, self._rows - aligned._rows)

    def intersection(self, other: "Relation") -> "Relation":
        """Set intersection; schemas must agree as attribute sets."""
        aligned = self._check_union_compatible(other)
        return Relation(self._attributes, self._rows & aligned._rows)

    def natural_join(self, other: "Relation") -> "Relation":
        """Natural join on all shared attribute names (hash join).

        The result's columns are ``self``'s attributes followed by ``other``'s
        non-shared attributes.  With no shared attributes this degenerates to
        the Cartesian product; with identical schemas, to intersection.
        """
        shared = tuple(a for a in self._attributes if a in set(other._attributes))
        if not shared:
            return self._cartesian_product(other)
        if set(other._attributes) <= set(self._attributes) and set(
            self._attributes
        ) <= set(other._attributes):
            return self.intersection(other)

        left_pos = positions_of(self._attributes, shared)
        right_pos = positions_of(other._attributes, shared)
        extra = tuple(a for a in other._attributes if a not in set(self._attributes))
        extra_pos = positions_of(other._attributes, extra)

        buckets: Dict[Row, list] = {}
        for row in other._rows:
            key = tuple(row[p] for p in right_pos)
            buckets.setdefault(key, []).append(tuple(row[p] for p in extra_pos))

        result_rows = []
        for row in self._rows:
            key = tuple(row[p] for p in left_pos)
            for suffix in buckets.get(key, ()):
                result_rows.append(row + suffix)
        return Relation(self._attributes + extra, result_rows)

    def _cartesian_product(self, other: "Relation") -> "Relation":
        overlap = set(self._attributes) & set(other._attributes)
        if overlap:
            raise SchemaError(f"product requires disjoint schemas; shared: {overlap}")
        names = self._attributes + other._attributes
        rows = (a + b for a in self._rows for b in other._rows)
        return Relation(names, rows)

    def semijoin(self, other: "Relation") -> "Relation":
        """Semijoin ``self ⋉ other``: rows of self that join with some row of other.

        The schema of the result equals self's schema.  With no shared
        attributes the semijoin keeps everything iff *other* is nonempty.
        """
        shared = tuple(a for a in self._attributes if a in set(other._attributes))
        if not shared:
            return self if not other.is_empty() else Relation(self._attributes)
        right_keys = frozenset(
            tuple(row[p] for p in positions_of(other._attributes, shared))
            for row in other._rows
        )
        left_pos = positions_of(self._attributes, shared)
        kept = (
            row
            for row in self._rows
            if tuple(row[p] for p in left_pos) in right_keys
        )
        return Relation(self._attributes, kept)

    def antijoin(self, other: "Relation") -> "Relation":
        """Antijoin ``self ▷ other``: rows of self that join with no row of other."""
        return self.difference(self.semijoin(other))
