"""Relational database substrate: relations, schemas, databases, joins.

This package implements the data model of the paper's §3 — a database
``d = [D; R1, ..., Rm]`` — together with the relational algebra every
evaluation algorithm in the library is written against.
"""

from .attributes import HASH_PREFIX, hashed, is_hashed, unhashed
from .algebra import divide, join_all, project_join, union_all
from .database import Database
from .index import HashIndex, IndexPool
from .io import (
    database_from_json,
    database_to_json,
    load_database_csv,
    load_database_json,
    save_database_csv,
    save_database_json,
)
from .joins import (
    JOIN_ALGORITHMS,
    get_join_algorithm,
    hash_join,
    sort_merge_join,
)
from .relation import Relation
from .schema import DatabaseSchema, RelationSchema

__all__ = [
    "Database",
    "DatabaseSchema",
    "HASH_PREFIX",
    "HashIndex",
    "IndexPool",
    "JOIN_ALGORITHMS",
    "Relation",
    "RelationSchema",
    "database_from_json",
    "database_to_json",
    "divide",
    "load_database_csv",
    "load_database_json",
    "save_database_csv",
    "save_database_json",
    "get_join_algorithm",
    "hash_join",
    "hashed",
    "is_hashed",
    "join_all",
    "project_join",
    "sort_merge_join",
    "unhashed",
    "union_all",
]
