"""Relation and database schemas.

The paper distinguishes *fixed* versus *variable* schema parametrizations
(Figure 1).  A :class:`RelationSchema` records a relation name and arity
(with optional default attribute names); a :class:`DatabaseSchema` is a set
of relation schemas.  Databases validate their relations against a schema,
and the parametric framework uses schemas to state which reductions need a
fixed schema (all of the paper's lower bounds do) and which work for
variable schemas (all of the upper bounds do).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Tuple

from ..errors import SchemaError


@dataclass(frozen=True)
class RelationSchema:
    """Name and arity of a relation, with optional attribute names."""

    name: str
    arity: int
    attributes: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relation name must be nonempty")
        if self.arity < 0:
            raise SchemaError(f"negative arity for {self.name}: {self.arity}")
        if self.attributes is not None and len(self.attributes) != self.arity:
            raise SchemaError(
                f"{self.name}: {len(self.attributes)} attribute names "
                f"for arity {self.arity}"
            )

    def default_attributes(self) -> Tuple[str, ...]:
        """Attribute names to use when none were declared (``name.0``...)."""
        if self.attributes is not None:
            return self.attributes
        return tuple(f"{self.name}.{i}" for i in range(self.arity))


class DatabaseSchema:
    """An immutable collection of :class:`RelationSchema` objects by name."""

    def __init__(self, relations: Iterable[RelationSchema] = ()) -> None:
        self._relations: Dict[str, RelationSchema] = {}
        for schema in relations:
            if schema.name in self._relations:
                raise SchemaError(f"duplicate relation schema: {schema.name}")
            self._relations[schema.name] = schema

    @classmethod
    def of(cls, **arities: int) -> "DatabaseSchema":
        """Shorthand: ``DatabaseSchema.of(E=2, P=1)``."""
        return cls(RelationSchema(n, a) for n, a in arities.items())

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __getitem__(self, name: str) -> RelationSchema:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation: {name!r}") from None

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def names(self) -> Tuple[str, ...]:
        """Relation names in declaration order."""
        return tuple(self._relations)

    def arity(self, name: str) -> int:
        """Arity of relation *name*."""
        return self[name].arity

    def max_arity(self) -> int:
        """Largest arity in the schema (0 for the empty schema)."""
        return max((s.arity for s in self), default=0)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseSchema):
            return NotImplemented
        return self._relations == other._relations

    def __repr__(self) -> str:
        inner = ", ".join(f"{s.name}/{s.arity}" for s in self)
        return f"DatabaseSchema({inner})"
