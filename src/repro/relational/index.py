"""Hash indexes over relations.

The naive backtracking evaluator probes relations billions of times on large
instances; a hash index on the bound positions turns each probe from a scan
into a dictionary lookup.  Indexes are built lazily and cached per
(relation, positions) pair by the evaluator that owns them.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Sequence, Tuple

from .relation import Relation, Row


class HashIndex:
    """An index of a relation's rows keyed by a subset of column positions.

    ``HashIndex(rel, (0, 2))`` maps each (value@0, value@2) pair to the list
    of full rows having those values — the access pattern of the backtracking
    evaluator when positions 0 and 2 of an atom are already bound.
    """

    __slots__ = ("positions", "_buckets")

    def __init__(self, relation: Relation, positions: Sequence[int]) -> None:
        self.positions: Tuple[int, ...] = tuple(positions)
        buckets: Dict[Tuple[Any, ...], List[Row]] = {}
        for row in relation.rows:
            key = tuple(row[p] for p in self.positions)
            buckets.setdefault(key, []).append(row)
        self._buckets = buckets

    def lookup(self, key: Sequence[Any]) -> List[Row]:
        """Rows whose indexed positions equal *key* (possibly empty)."""
        return self._buckets.get(tuple(key), [])

    def keys(self) -> FrozenSet[Tuple[Any, ...]]:
        """All distinct index keys."""
        return frozenset(self._buckets)

    def __len__(self) -> int:
        return len(self._buckets)


class IndexPool:
    """A cache of :class:`HashIndex` objects keyed by (id, positions).

    Relations are immutable, so caching by object identity is safe for the
    lifetime of the pool.  The pool also pins the relations it has indexed so
    that ids cannot be recycled while the pool is alive.
    """

    def __init__(self) -> None:
        self._cache: Dict[Tuple[int, Tuple[int, ...]], HashIndex] = {}
        self._pinned: List[Relation] = []

    def index(self, relation: Relation, positions: Sequence[int]) -> HashIndex:
        """Return (building if necessary) the index on *positions*."""
        key = (id(relation), tuple(positions))
        found = self._cache.get(key)
        if found is None:
            found = HashIndex(relation, positions)
            self._cache[key] = found
            self._pinned.append(relation)
        return found

    def __len__(self) -> int:
        return len(self._cache)
