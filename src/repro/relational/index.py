"""Hash indexes over relations.

The naive backtracking evaluator probes relations billions of times on large
instances; a hash index on the bound positions turns each probe from a scan
into a dictionary lookup.

Since the columnar-kernel rewrite, the index storage itself lives *on the
relation* (:meth:`Relation._index` — built lazily, cached forever, safe
because relations are immutable).  :class:`HashIndex` and :class:`IndexPool`
are kept as the stable public API: they are thin views over the per-relation
cache, so an index built through any entry point (``semijoin``,
``natural_join``, ``select_eq``, an evaluator, or this module) is shared by
all of them.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Sequence, Tuple

from .relation import Relation, Row

#: Sentinel that can never appear as an index key (private object identity).
_NO_SUCH_KEY = object()


class HashIndex:
    """An index of a relation's rows keyed by a subset of column positions.

    ``HashIndex(rel, (0, 2))`` maps each (value@0, value@2) pair to the list
    of full rows having those values — the access pattern of the backtracking
    evaluator when positions 0 and 2 of an atom are already bound.
    """

    __slots__ = ("positions", "_buckets")

    def __init__(self, relation: Relation, positions: Sequence[int]) -> None:
        self.positions: Tuple[int, ...] = tuple(positions)
        # Delegates to the relation's own cache: the buckets are built at
        # most once per (relation, positions) pair process-wide.
        self._buckets = relation._index(self.positions)

    def _key(self, key: Sequence[Any]) -> Any:
        # Single-position indexes store raw values as keys (see
        # Relation._index); normalize the sequence form used by callers.
        normalized = tuple(key)
        if len(self.positions) == 1:
            if len(normalized) != 1:
                return _NO_SUCH_KEY  # wrong-arity key: matches nothing
            return normalized[0]
        return normalized

    def lookup(self, key: Sequence[Any]) -> List[Row]:
        """Rows whose indexed positions equal *key* (possibly empty)."""
        return list(self._buckets.get(self._key(key), ()))

    def keys(self) -> FrozenSet[Tuple[Any, ...]]:
        """All distinct index keys, as tuples."""
        if len(self.positions) == 1:
            return frozenset((k,) for k in self._buckets)
        return frozenset(self._buckets)

    def __len__(self) -> int:
        return len(self._buckets)


class IndexPool:
    """A cache of :class:`HashIndex` objects keyed by (id, positions).

    Relations are immutable, so caching by object identity is safe for the
    lifetime of the pool.  The pool also pins the relations it has indexed so
    that ids cannot be recycled while the pool is alive.  The underlying
    bucket dictionaries live on the relations themselves, so distinct pools
    indexing the same relation share storage.
    """

    def __init__(self) -> None:
        self._cache: Dict[Tuple[int, Tuple[int, ...]], HashIndex] = {}
        self._pinned: List[Relation] = []

    def index(self, relation: Relation, positions: Sequence[int]) -> HashIndex:
        """Return (building if necessary) the index on *positions*."""
        key = (id(relation), tuple(positions))
        found = self._cache.get(key)
        if found is None:
            found = HashIndex(relation, positions)
            self._cache[key] = found
            self._pinned.append(relation)
        return found

    def __len__(self) -> int:
        return len(self._cache)
