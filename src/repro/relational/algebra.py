"""Free-function relational algebra, including multiway helpers.

The :class:`~repro.relational.relation.Relation` methods cover the binary
operators; this module adds the n-ary conveniences the evaluation algorithms
use (join a whole list, project a join without materializing it eagerly,
full semijoin reduction over a tree) plus the classic derived operator
division, included for algebra-law testing.
"""

from __future__ import annotations

from functools import reduce
from typing import Iterable, List, Sequence, Tuple

from ..errors import SchemaError
from .joins import JoinAlgorithm, hash_join
from .relation import Relation


def join_all(
    relations: Sequence[Relation], algorithm: JoinAlgorithm = hash_join
) -> Relation:
    """Natural join of all *relations*, smallest-first for cheaper intermediates.

    The empty join is the nullary TRUE relation (identity of natural join).
    """
    if not relations:
        return Relation.unit()
    ordered: List[Relation] = sorted(relations, key=len)
    return reduce(algorithm, ordered)


def project_join(
    relations: Sequence[Relation],
    attributes: Sequence[str],
    algorithm: JoinAlgorithm = hash_join,
) -> Relation:
    """π_attributes(R1 ⋈ ... ⋈ Rs), projecting early after each join.

    After each intermediate join we may safely drop any column that is
    neither requested in *attributes* nor shared with a not-yet-joined
    relation; this is the standard early-projection optimization and keeps
    intermediates closer to the output size.
    """
    if not relations:
        return Relation.unit().project(())
    remaining = list(sorted(relations, key=len))
    wanted = set(attributes)

    current = remaining.pop(0)
    while remaining:
        nxt = remaining.pop(0)
        future = set().union(*(set(r.attributes) for r in remaining)) if remaining else set()
        if algorithm is hash_join:
            # Fused path: drop nxt's dead columns inside the join's build
            # side instead of materializing the intermediate first.
            current_set = set(current.attributes)
            nxt_keep = tuple(
                a
                for a in nxt.attributes
                if a in current_set or a in wanted or a in future
            )
            current = current._join_keep(nxt, nxt_keep)
        else:
            current = algorithm(current, nxt)
        keep = tuple(a for a in current.attributes if a in wanted or a in future)
        current = current.project(keep)
    return current.project(tuple(attributes))


def semijoin_reduce_pairwise(
    left: Relation, right: Relation
) -> Tuple[Relation, Relation]:
    """Make two relations pairwise consistent: each keeps only joining rows."""
    return left.semijoin(right), right.semijoin(left)


def union_all(relations: Iterable[Relation]) -> Relation:
    """Union of any number of schema-compatible relations.

    Raises :class:`SchemaError` on the empty union: the result schema would
    be ambiguous.
    """
    items = list(relations)
    if not items:
        raise SchemaError("union of zero relations has no schema")
    return reduce(Relation.union, items)


def divide(dividend: Relation, divisor: Relation) -> Relation:
    """Relational division ``dividend ÷ divisor``.

    Returns the largest relation T over the dividend's non-divisor attributes
    such that T × divisor ⊆ dividend.  Implements the textbook double-
    difference formulation; used for universally quantified first-order
    subformulas and exercised by the algebra-law test-suite.
    """
    divisor_attrs = set(divisor.attributes)
    if not divisor_attrs <= set(dividend.attributes):
        raise SchemaError(
            f"divisor attributes {sorted(divisor_attrs)} not contained in "
            f"dividend attributes {list(dividend.attributes)}"
        )
    quotient_attrs = tuple(
        a for a in dividend.attributes if a not in divisor_attrs
    )
    if not quotient_attrs:
        # Nullary quotient: TRUE iff every divisor row appears in dividend.
        ok = divisor.rows <= dividend.project(divisor.attributes).rows
        return Relation.unit() if ok else Relation.empty()
    candidates = dividend.project(quotient_attrs)
    if divisor.is_empty():
        return candidates
    required = candidates.natural_join(divisor)
    missing = required.difference(
        dividend.project(required.attributes)
    ).project(quotient_attrs)
    return candidates.difference(missing)
