"""The :class:`Database` container: a domain plus named relations.

Matches the paper's §3 definition ``d = [D; R1, ..., Rm]``: a database is a
domain D and relations over D.  The domain may be given explicitly (needed
for first-order negation under active-domain semantics extended with a
declared domain) or default to the *active domain* — every value occurring
in some relation.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Tuple

from ..errors import SchemaError
from .relation import Relation
from .schema import DatabaseSchema, RelationSchema


class Database:
    """A named collection of relations with an explicit or active domain.

    Parameters
    ----------
    relations:
        Mapping from relation name to :class:`Relation`.
    domain:
        Optional explicit domain.  Must contain the active domain.  When
        omitted, :meth:`domain` returns the active domain.
    """

    def __init__(
        self,
        relations: Mapping[str, Relation],
        domain: Optional[Iterable[Any]] = None,
    ) -> None:
        self._relations: Dict[str, Relation] = dict(relations)
        self._active: Optional[FrozenSet[Any]] = None
        self._domain: Optional[FrozenSet[Any]] = (
            frozenset(domain) if domain is not None else None
        )
        if self._domain is not None:
            missing = self.active_domain() - self._domain
            if missing:
                raise SchemaError(
                    f"declared domain misses active values: {sorted(map(repr, missing))[:5]}"
                )

    # ------------------------------------------------------------------

    @classmethod
    def from_tuples(
        cls,
        relations: Mapping[str, Iterable[Tuple[Any, ...]]],
        domain: Optional[Iterable[Any]] = None,
    ) -> "Database":
        """Build a database from raw tuple iterables, inferring arities.

        Attribute names default to ``name.0, name.1, ...``.  An empty tuple
        iterable would leave the arity ambiguous, so empty relations must be
        added via :meth:`with_relation` with explicit attributes.
        """
        built: Dict[str, Relation] = {}
        for name, tuples in relations.items():
            rows = [tuple(t) for t in tuples]
            if not rows:
                raise SchemaError(
                    f"cannot infer arity of empty relation {name!r}; "
                    "use with_relation with explicit attributes"
                )
            arity = len(rows[0])
            schema = RelationSchema(name, arity)
            built[name] = Relation.from_rows(schema.default_attributes(), rows)
        return cls(built, domain=domain)

    def with_relation(
        self, name: str, relation: Relation, extend_domain: bool = False
    ) -> "Database":
        """Return a new database with *name* bound to *relation*.

        With *extend_domain*, a declared domain grows to absorb the new
        relation's values instead of rejecting them — used by batch
        lifting, whose injected parameter relation legitimately carries
        out-of-domain probe constants (a decision instance for a value the
        database has never seen is simply false, not malformed).
        """
        updated = dict(self._relations)
        updated[name] = relation
        domain = self._domain
        if extend_domain and domain is not None:
            domain = domain | relation.active_values()
        return Database(updated, domain=domain)

    # ------------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation: {name!r}") from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def relations(self) -> Dict[str, Relation]:
        """A copy of the name → relation mapping."""
        return dict(self._relations)

    def names(self) -> Tuple[str, ...]:
        """Relation names in insertion order."""
        return tuple(self._relations)

    def schema(self) -> DatabaseSchema:
        """The schema induced by the stored relations."""
        return DatabaseSchema(
            RelationSchema(name, rel.arity, rel.attributes)
            for name, rel in self._relations.items()
        )

    # ------------------------------------------------------------------

    def active_domain(self) -> FrozenSet[Any]:
        """All values occurring in some relation (computed once and cached —
        the stored relations are immutable)."""
        if self._active is None:
            values: set = set()
            for rel in self._relations.values():
                for row in rel.rows:
                    values.update(row)
            self._active = frozenset(values)
        return self._active

    def domain(self) -> FrozenSet[Any]:
        """The declared domain, or the active domain when none was declared."""
        if self._domain is not None:
            return self._domain
        return self.active_domain()

    def size(self) -> int:
        """Total number of (relation, tuple) entries — the paper's n = |d|.

        We count tuples weighted by arity, plus the domain size, which is the
        standard encoding-length measure up to constants.
        """
        total = len(self.domain())
        for rel in self._relations.values():
            total += rel.cardinality * max(rel.arity, 1)
        return total

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return self._relations == other._relations and self.domain() == other.domain()

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}: {rel.cardinality}x{rel.arity}"
            for name, rel in self._relations.items()
        )
        return f"Database({inner}; |D|={len(self.domain())})"
