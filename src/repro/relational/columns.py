"""Process-wide dictionary encoding behind the columnar relation kernel.

The columnar :class:`~repro.relational.relation.Relation` store keeps one
code array per attribute, where a *code* is a small integer naming a value
in a process-wide :class:`ValuePool`.  Two pools exist, both global:

* :data:`VALUES` interns raw row values.  Interning uses Python value
  equality — the same notion the frozenset-of-rows kernel always used — so
  code equality is *exactly* value equality, across every relation in the
  process.  (``1 == True == 1.0`` collapse to one code, distinct NaN
  objects get distinct codes; both match frozenset/dict semantics.)
* :data:`KEYS` interns composite join keys as tuples of value codes, giving
  multi-attribute keys a single small-int identity.  Because the component
  codes are global, composite codes are comparable across relations too.

Pools only ever grow (they are process-lifetime dictionaries); values are
never evicted and codes are never reused.  Hot paths therefore never
*decode*: result rows are always selected from original row tuples, so
exact value fidelity is preserved even where equal-but-distinguishable
values (``1`` vs ``True``) share a code.

Thread safety: lookups are plain dict reads (atomic under the GIL); the
miss path takes the pool lock, re-checks, and publishes the new code, so
concurrent encoders converge on one code per value.
"""

from __future__ import annotations

import threading
from array import array
from typing import Any, Dict, Iterable, List, Optional, Sequence

#: Typecode of every code array: signed 64-bit, plenty for process-lifetime
#: pools and cheap to hash/compare as Python ints.
CODE_TYPECODE = "q"


class ValuePool:
    """An append-only intern table: hashable value → dense int code."""

    __slots__ = ("_codes", "_values", "_lock")

    def __init__(self) -> None:
        self._codes: Dict[Any, int] = {}
        self._values: List[Any] = []
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._values)

    def encode(self, value: Any) -> int:
        """The code for *value*, interning it on first sight."""
        code = self._codes.get(value)
        if code is None:
            with self._lock:
                code = self._codes.get(value)
                if code is None:
                    code = len(self._values)
                    self._values.append(value)
                    self._codes[value] = code
        return code

    def encode_column(self, values: Sequence[Any]) -> array:
        """Codes for a whole column, as an ``array('q')``.

        The warm path — every value already interned — is one C-level
        ``map`` into the array; a single miss falls back to the interning
        loop.
        """
        getitem = self._codes.__getitem__
        try:
            return array(CODE_TYPECODE, map(getitem, values))
        except KeyError:
            encode = self.encode
            return array(CODE_TYPECODE, [encode(v) for v in values])

    def code_of(self, value: Any) -> Optional[int]:
        """The code for *value*, or ``None`` if it was never interned.

        ``None`` proves the value appears in no encoded column (the pool
        never evicts), which lets probe paths short-circuit to empty.
        """
        return self._codes.get(value)

    def decode(self, code: int) -> Any:
        """The first-seen representative value for *code*.

        Representatives are exact for round-tripping codes produced by
        :meth:`encode` on the same value object, but equal values that
        compare ``==`` across types (``1``/``True``) share one code —
        which is why kernel hot paths select original rows instead of
        decoding.
        """
        return self._values[code]


def select_codes(column: array, indices: Sequence[int]) -> array:
    """``column[i]`` for each ``i`` in *indices*, as a new code array."""
    return array(CODE_TYPECODE, map(column.__getitem__, indices))


def zip_key_codes(pool: ValuePool, columns: Sequence[array]) -> array:
    """Composite key codes for aligned code *columns* (interned in *pool*)."""
    return pool.encode_column(list(zip(*columns)))


def key_code_of(
    values_pool: ValuePool, keys_pool: ValuePool, key: Any, width: int
) -> Optional[int]:
    """The key code a :meth:`Relation._partition` router assigns to *key*.

    *key* follows the index-key convention: the raw value when *width* is
    1, the value tuple otherwise.  Returns ``None`` when any component was
    never interned — such a key cannot appear in any partitioned relation,
    so callers may treat it as matching nothing.
    """
    if width == 1:
        return values_pool.code_of(key)
    component_codes: List[int] = []
    for value in key:
        code = values_pool.code_of(value)
        if code is None:
            return None
        component_codes.append(code)
    return keys_pool.code_of(tuple(component_codes))


def intern_key_code(
    values_pool: ValuePool, keys_pool: ValuePool, key: Any, width: int
) -> int:
    """Like :func:`key_code_of` but interning: always returns a code."""
    if width == 1:
        return values_pool.encode(key)
    return keys_pool.encode(tuple(values_pool.encode(v) for v in key))


def iter_values(pool: ValuePool, codes: Iterable[int]) -> Iterable[Any]:
    """Decode *codes* through *pool* (test/debug helper; not a hot path)."""
    values = pool._values
    return (values[c] for c in codes)


def values_equal(left: Any, right: Any) -> bool:
    """Value equality as the pool (and dict/frozenset) defines it.

    Identity first, then ``==`` — the containment test Python's hash
    tables use, and therefore exactly when two interned values share a
    code.  Every linear-scan comparison in the kernel and the evaluators
    must use this instead of bare ``==``/``!=``: the two differ only on
    non-reflexive values (NaN compares ``!=`` to itself, but a dict key —
    and a pool code — matches itself by identity), and bare ``==`` there
    silently drops rows the code-based fast paths keep.
    """
    return left is right or left == right


#: The process-wide pool of raw row values.
VALUES = ValuePool()

#: The process-wide pool of composite keys (tuples of VALUES codes).  Kept
#: separate from VALUES so a tuple-of-ints *row value* can never collide
#: with a composite key made of the same ints.
KEYS = ValuePool()
