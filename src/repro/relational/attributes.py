"""Attribute-name helpers for the relational layer.

Relations in this library carry *named* columns.  Query evaluation renames
columns to variable names, and the Theorem 2 machinery (color-coding over a
join tree) additionally introduces one *hashed shadow attribute* per query
variable that participates in an inequality.  The paper writes the shadow of
``x`` as ``x'``; we reserve the prefix ``#`` for these names so that user
variables can never collide with them.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from ..errors import SchemaError

#: Prefix of hashed shadow attributes (the paper's primed attributes x').
HASH_PREFIX = "#"


def hashed(attribute: str) -> str:
    """Return the hashed shadow attribute name for *attribute* (``x → #x``)."""
    return HASH_PREFIX + attribute


def is_hashed(attribute: str) -> bool:
    """Return True iff *attribute* is a hashed shadow attribute."""
    return attribute.startswith(HASH_PREFIX)


def unhashed(attribute: str) -> str:
    """Inverse of :func:`hashed`; raises if *attribute* is not hashed."""
    if not is_hashed(attribute):
        raise SchemaError(f"attribute {attribute!r} is not a hashed attribute")
    return attribute[len(HASH_PREFIX):]


def check_attribute_names(attributes: Sequence[str]) -> Tuple[str, ...]:
    """Validate and normalize a sequence of attribute names.

    Attribute names must be nonempty strings and pairwise distinct.  Returns
    the names as a tuple.  Raises :class:`SchemaError` otherwise.
    """
    names = tuple(attributes)
    for name in names:
        if not isinstance(name, str) or not name:
            raise SchemaError(f"invalid attribute name: {name!r}")
    if len(set(names)) != len(names):
        duplicates = sorted({n for n in names if names.count(n) > 1})
        raise SchemaError(f"duplicate attribute names: {duplicates}")
    return names


def positions_of(attributes: Sequence[str], wanted: Iterable[str]) -> Tuple[int, ...]:
    """Return the positions of *wanted* attributes inside *attributes*.

    Raises :class:`SchemaError` if any wanted attribute is missing.
    """
    index = {name: i for i, name in enumerate(attributes)}
    try:
        return tuple(index[name] for name in wanted)
    except KeyError as exc:
        raise SchemaError(
            f"attribute {exc.args[0]!r} not among {list(attributes)}"
        ) from None
