"""Wire message types: versioned requests, responses, and error payloads.

The protocol keeps the service facade's *three evaluation modes* —
evaluation (``execute``), decision (``decide``), and batch
(``execute_batch`` / ``decide_batch``) — first-class on the wire, plus
``explain`` and ``stats`` for observability and ``ping`` for liveness.
Every message is one JSON object on one line (see :mod:`.codec` for the
framing) carrying the protocol version ``v``; a server rejects versions it
does not speak with a structured ``unsupported_version`` error instead of
guessing.

Messages are plain frozen dataclasses with a *canonical* wire form:
``to_wire`` emits only the fields the message actually uses, and
``from_wire`` validates shape and types strictly — the round-trip
``decode(encode(m)) == m`` is byte-exact (the codec property suite pins
this with Hypothesis, including unicode constants, empty relations, and
oversized batches).

Queries travel as rule-notation *text* (``"G(x) :- E(x, y)."``) — the
format :func:`repro.query.parser.parse_query` reads and
``ConjunctiveQuery.__repr__`` emits, so objects round-trip through the
wire without a second serialization scheme.  Relations travel as
``{"attributes": [...], "rows": [[...], ...]}`` with rows sorted
deterministically, so two byte-equal relation payloads mean equal
relations and vice versa — the cross-process stress suite byte-compares
server responses against in-process evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from ..errors import ReproError, RequestRejectedError
from ..relational.relation import Relation

#: The one protocol version this build speaks.
PROTOCOL_VERSION = 1

# Request operations (the service facade, on the wire).  The query ops
# mirror the operation kinds of :mod:`repro.operations` verbatim, so a
# wire op string IS an engine operation kind.
EXECUTE = "execute"
DECIDE = "decide"
EXPLAIN = "explain"
COUNT = "count"
AGGREGATE = "aggregate"
EXECUTE_BATCH = "execute_batch"
DECIDE_BATCH = "decide_batch"
RUN_BATCH = "run_batch"
STATS = "stats"
PING = "ping"
CANCEL = "cancel"
REGISTER_DATABASE = "register_database"

OPS = (
    EXECUTE,
    DECIDE,
    EXPLAIN,
    COUNT,
    AGGREGATE,
    EXECUTE_BATCH,
    DECIDE_BATCH,
    RUN_BATCH,
    STATS,
    PING,
    CANCEL,
    REGISTER_DATABASE,
)

#: Ops that carry one query and a database name (one engine operation).
QUERY_OPS = (EXECUTE, DECIDE, EXPLAIN, COUNT, AGGREGATE)

#: Legacy homogeneous-batch ops: a list of queries and a database name.
BATCH_OPS = (EXECUTE_BATCH, DECIDE_BATCH)

# Response result kinds.
RELATION = "relation"
BOOLEAN = "boolean"
COUNT_RESULT = "count"
RELATIONS = "relations"
BOOLEANS = "booleans"
RESULTS = "results"
TEXT = "text"
STATS_RESULT = "stats"
PONG = "pong"
CANCELLED = "cancelled"
REGISTERED = "registered"
ERROR = "error"

RESULT_KINDS = (
    RELATION,
    BOOLEAN,
    COUNT_RESULT,
    RELATIONS,
    BOOLEANS,
    RESULTS,
    TEXT,
    STATS_RESULT,
    PONG,
    CANCELLED,
    REGISTERED,
)

#: JSON scalar types a relation value may carry on the wire.
_WIRE_SCALARS = (str, int, float, bool, type(None))


class ProtocolError(RequestRejectedError):
    """A wire message violated the protocol (framing, version, shape).

    Shares the typed-rejection contract of
    :class:`~repro.errors.RequestRejectedError`: a stable ``code`` plus a
    JSON-able ``detail`` mapping, which the codec serializes verbatim.
    """

    code = "bad_request"


class RemoteQueryError(ReproError):
    """A server answered a client request with a structured error.

    The client-side mirror of an error response: ``code`` / ``message`` /
    ``detail`` exactly as the server sent them, so remote failures are as
    inspectable as local :class:`~repro.errors.RequestRejectedError`\\ s.
    """

    def __init__(
        self,
        code: str,
        message: str,
        detail: Optional[Mapping[str, Any]] = None,
        request_id: Optional[int] = None,
    ) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.remote_message = message
        self.detail = dict(detail or {})
        self.request_id = request_id


@dataclass(frozen=True)
class ErrorInfo:
    """The structured error payload of a failed response."""

    code: str
    message: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_wire(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"code": self.code, "message": self.message}
        if self.detail:
            payload["detail"] = dict(self.detail)
        return payload

    @classmethod
    def from_wire(cls, payload: Any) -> "ErrorInfo":
        if not isinstance(payload, dict):
            raise ProtocolError("error payload must be an object")
        code = payload.get("code")
        message = payload.get("message")
        if not isinstance(code, str) or not isinstance(message, str):
            raise ProtocolError("error payload needs string 'code' and 'message'")
        detail = payload.get("detail", {})
        if not isinstance(detail, dict):
            raise ProtocolError("error detail must be an object")
        return cls(code=code, message=message, detail=detail)


def _validate_options(options: Any, op: str) -> None:
    """Structural check only — semantic option validation (allowed names,
    aggregate modes) lives in :meth:`repro.operations.Operation.validate`
    server-side, where it produces a typed error response."""
    if not isinstance(options, dict) or not all(
        isinstance(name, str) for name in options
    ):
        raise ProtocolError(
            f"{op} 'options' must be an object with string keys", op=op
        )


def _valid_operation_entry(entry: Any) -> bool:
    """Is *entry* a structurally valid ``run_batch`` member?"""
    if not isinstance(entry, dict) or not set(entry) <= {"op", "query", "options"}:
        return False
    if entry.get("op") not in QUERY_OPS or not isinstance(entry.get("query"), str):
        return False
    options = entry.get("options")
    if options is not None and (
        not isinstance(options, dict)
        or not all(isinstance(name, str) for name in options)
    ):
        return False
    return True


@dataclass(frozen=True)
class Request:
    """One client request: an operation plus its operands.

    ``id`` correlates the response on a pipelined connection — the server
    answers requests as they complete, not in arrival order.
    """

    op: str
    id: int
    query: Optional[str] = None
    queries: Optional[Tuple[str, ...]] = None
    database: Optional[str] = None
    #: Optional per-request budget in seconds (query/batch ops only):
    #: past it the server answers ``deadline_exceeded`` and cancels the
    #: execution cooperatively.
    deadline: Optional[float] = None
    #: For ``cancel``: the id of the in-flight request to tear down.
    target: Optional[int] = None
    #: Operation options for the query ops (e.g. ``aggregate``'s ``mode``
    #: and ``group_by``); forwarded into :class:`repro.operations.Operation`
    #: server-side, where unknown names fail with a typed error.
    options: Optional[Dict[str, Any]] = None
    #: For ``run_batch``: one ``{"op", "query", "options"?}`` object per
    #: member operation.
    operations: Optional[Tuple[Dict[str, Any], ...]] = None
    #: For ``register_database``: the database document —
    #: ``{"relations": {name: {"attributes", "rows"}}, "domain"?: [...]}``
    #: (the shape :func:`encode_database` emits).
    data: Optional[Dict[str, Any]] = None
    #: For ``ping``: frame formats the client can read (e.g. the binary
    #: relation framing of :mod:`.frames`).  The server answers with the
    #: subset it accepts and only then sends non-JSON frames.
    frames: Optional[Tuple[str, ...]] = None

    def to_wire(self) -> Dict[str, Any]:
        self.validate()
        payload: Dict[str, Any] = {"v": PROTOCOL_VERSION, "op": self.op, "id": self.id}
        if self.query is not None:
            payload["query"] = self.query
        if self.queries is not None:
            payload["queries"] = list(self.queries)
        if self.database is not None:
            payload["database"] = self.database
        if self.deadline is not None:
            payload["deadline"] = self.deadline
        if self.target is not None:
            payload["target"] = self.target
        if self.options is not None:
            payload["options"] = dict(self.options)
        if self.operations is not None:
            payload["operations"] = [dict(entry) for entry in self.operations]
        if self.data is not None:
            payload["data"] = dict(self.data)
        if self.frames is not None:
            payload["frames"] = list(self.frames)
        return payload

    def validate(self) -> None:
        """Reject structurally invalid requests with a typed error."""
        if self.op not in OPS:
            raise ProtocolError(
                f"unknown op {self.op!r}", code="bad_request", op=str(self.op)
            )
        if not isinstance(self.id, int) or isinstance(self.id, bool) or self.id < 0:
            raise ProtocolError("request id must be a non-negative integer")
        if self.deadline is not None:
            if (
                self.op not in QUERY_OPS
                and self.op not in BATCH_OPS
                and self.op != RUN_BATCH
            ):
                raise ProtocolError(f"{self.op} takes no 'deadline'", op=self.op)
            if (
                isinstance(self.deadline, bool)
                or not isinstance(self.deadline, (int, float))
                or not self.deadline > 0
                or self.deadline != self.deadline  # NaN
                or self.deadline == float("inf")
            ):
                raise ProtocolError(
                    "'deadline' must be a positive finite number of seconds"
                )
        if self.target is not None and self.op != CANCEL:
            raise ProtocolError(f"{self.op} takes no 'target'", op=self.op)
        if self.options is not None:
            if self.op not in QUERY_OPS:
                raise ProtocolError(f"{self.op} takes no 'options'", op=self.op)
            _validate_options(self.options, self.op)
        if self.operations is not None and self.op != RUN_BATCH:
            raise ProtocolError(f"{self.op} takes no 'operations'", op=self.op)
        if self.data is not None and self.op != REGISTER_DATABASE:
            raise ProtocolError(f"{self.op} takes no 'data'", op=self.op)
        if self.frames is not None:
            if self.op != PING:
                raise ProtocolError(f"{self.op} takes no 'frames'", op=self.op)
            if not all(isinstance(name, str) for name in self.frames):
                raise ProtocolError("'frames' must be a list of strings")
        if self.op in QUERY_OPS:
            if not isinstance(self.query, str):
                raise ProtocolError(f"{self.op} needs a 'query' string", op=self.op)
            if not isinstance(self.database, str):
                raise ProtocolError(f"{self.op} needs a 'database' name", op=self.op)
            if self.queries is not None:
                raise ProtocolError(f"{self.op} takes 'query', not 'queries'")
        elif self.op == RUN_BATCH:
            if self.operations is None or not all(
                _valid_operation_entry(entry) for entry in self.operations
            ):
                raise ProtocolError(
                    "run_batch needs an 'operations' list of "
                    '{"op", "query", "options"?} objects with op in '
                    f"{QUERY_OPS}",
                    op=self.op,
                )
            if not isinstance(self.database, str):
                raise ProtocolError(f"{self.op} needs a 'database' name", op=self.op)
            if self.query is not None or self.queries is not None:
                raise ProtocolError(
                    f"{self.op} takes 'operations', not 'query'/'queries'"
                )
        elif self.op in BATCH_OPS:
            if self.queries is None or not all(
                isinstance(query, str) for query in self.queries
            ):
                raise ProtocolError(
                    f"{self.op} needs a 'queries' list of strings", op=self.op
                )
            if not isinstance(self.database, str):
                raise ProtocolError(f"{self.op} needs a 'database' name", op=self.op)
            if self.query is not None:
                raise ProtocolError(f"{self.op} takes 'queries', not 'query'")
        elif self.op == REGISTER_DATABASE:
            if not isinstance(self.database, str) or not self.database:
                raise ProtocolError(
                    f"{self.op} needs a nonempty 'database' name", op=self.op
                )
            if not isinstance(self.data, dict) or not isinstance(
                self.data.get("relations"), dict
            ):
                raise ProtocolError(
                    f"{self.op} needs a 'data' object with a 'relations' "
                    "mapping",
                    op=self.op,
                )
            if self.query is not None or self.queries is not None:
                raise ProtocolError(
                    f"{self.op} takes 'database' and 'data' only", op=self.op
                )
        elif self.op == CANCEL:
            if (
                not isinstance(self.target, int)
                or isinstance(self.target, bool)
                or self.target < 0
            ):
                raise ProtocolError(
                    "cancel needs a non-negative integer 'target'", op=self.op
                )
            if (
                self.query is not None
                or self.queries is not None
                or self.database is not None
            ):
                raise ProtocolError("cancel takes only a 'target'", op=self.op)
        else:  # stats / ping carry no operands
            if (
                self.query is not None
                or self.queries is not None
                or self.database is not None
            ):
                raise ProtocolError(f"{self.op} takes no operands", op=self.op)

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "Request":
        unknown = set(payload) - {
            "v",
            "op",
            "id",
            "query",
            "queries",
            "database",
            "deadline",
            "target",
            "options",
            "operations",
            "data",
            "frames",
        }
        if unknown:
            raise ProtocolError(
                f"unknown request field(s): {sorted(unknown)}",
                fields=sorted(map(str, unknown)),
            )
        queries = payload.get("queries")
        if queries is not None:
            if not isinstance(queries, list):
                raise ProtocolError("'queries' must be a list")
            queries = tuple(queries)
        operations = payload.get("operations")
        if operations is not None:
            if not isinstance(operations, list):
                raise ProtocolError("'operations' must be a list")
            operations = tuple(operations)
        frames = payload.get("frames")
        if frames is not None:
            if not isinstance(frames, list):
                raise ProtocolError("'frames' must be a list")
            frames = tuple(frames)
        request = cls(
            op=payload.get("op"),
            id=payload.get("id"),
            query=payload.get("query"),
            queries=queries,
            database=payload.get("database"),
            deadline=payload.get("deadline"),
            target=payload.get("target"),
            options=payload.get("options"),
            operations=operations,
            data=payload.get("data"),
            frames=frames,
        )
        request.validate()
        return request


@dataclass(frozen=True)
class Response:
    """One server response: a result of a declared kind, or an error.

    ``id`` echoes the request; connection-level failures that cannot be
    attributed to a request (an unparseable line) carry ``id=None``.
    """

    id: Optional[int]
    kind: str
    result: Any = None
    error: Optional[ErrorInfo] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_wire(self) -> Dict[str, Any]:
        self.validate()
        payload: Dict[str, Any] = {
            "v": PROTOCOL_VERSION,
            "id": self.id,
            "ok": self.ok,
            "kind": self.kind,
        }
        if self.error is not None:
            payload["error"] = self.error.to_wire()
        else:
            payload["result"] = self.result
        return payload

    def validate(self) -> None:
        if self.error is not None:
            if self.kind != ERROR:
                raise ProtocolError("error responses must use kind 'error'")
        elif self.kind not in RESULT_KINDS:
            raise ProtocolError(f"unknown response kind {self.kind!r}")
        if self.id is not None and (
            not isinstance(self.id, int) or isinstance(self.id, bool) or self.id < 0
        ):
            raise ProtocolError("response id must be a non-negative integer or null")

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "Response":
        unknown = set(payload) - {"v", "id", "ok", "kind", "result", "error"}
        if unknown:
            raise ProtocolError(
                f"unknown response field(s): {sorted(unknown)}",
                fields=sorted(map(str, unknown)),
            )
        ok = payload.get("ok")
        if not isinstance(ok, bool):
            raise ProtocolError("response needs a boolean 'ok'")
        kind = payload.get("kind")
        if not isinstance(kind, str):
            raise ProtocolError("response needs a string 'kind'")
        if ok:
            if "error" in payload:
                raise ProtocolError("ok responses carry no 'error'")
            response = cls(
                id=payload.get("id"), kind=kind, result=payload.get("result")
            )
        else:
            if "result" in payload:
                raise ProtocolError("error responses carry no 'result'")
            response = cls(
                id=payload.get("id"),
                kind=kind,
                error=ErrorInfo.from_wire(payload.get("error")),
            )
        response.validate()
        return response


# ----------------------------------------------------------------------
# Relation payloads
# ----------------------------------------------------------------------


def encode_relation(relation: Relation) -> Dict[str, Any]:
    """A deterministic JSON payload for *relation*.

    Rows are sorted by ``repr`` (the same order the CSV/JSON io uses), so
    equal relations encode to byte-equal payloads — the property the
    cross-process byte-comparison stress relies on.
    """
    for row in relation.rows:
        for value in row:
            if not isinstance(value, _WIRE_SCALARS):
                raise ProtocolError(
                    f"relation value {value!r} is not JSON-representable",
                    code="unrepresentable",
                )
    return {
        "attributes": list(relation.attributes),
        "rows": [list(row) for row in sorted(relation.rows, key=repr)],
    }


def decode_relation(payload: Any) -> Relation:
    """Inverse of :func:`encode_relation`."""
    if not isinstance(payload, dict):
        raise ProtocolError("relation payload must be an object")
    attributes = payload.get("attributes")
    rows = payload.get("rows")
    if not isinstance(attributes, list) or not isinstance(rows, list):
        raise ProtocolError("relation payload needs 'attributes' and 'rows' lists")
    return Relation.from_rows(tuple(attributes), (tuple(row) for row in rows))


def encode_result(value: Any) -> Tuple[str, Any]:
    """``(kind, payload)`` for one operation's return value.

    Type-driven on purpose: every facade return type — relation, bool,
    int (counts), str (explain renderings) — maps to exactly one result
    kind, so the server encodes *any* operation's answer, including kinds
    added after this code shipped, through this one function.  ``bool``
    is checked before ``int`` (it is a subtype).
    """
    if isinstance(value, Relation):
        return (RELATION, encode_relation(value))
    if isinstance(value, bool):
        return (BOOLEAN, bool(value))
    if isinstance(value, int):
        return (COUNT_RESULT, int(value))
    if isinstance(value, str):
        return (TEXT, str(value))
    raise ProtocolError(
        f"operation result of type {type(value).__name__} is not "
        "JSON-representable",
        code="unrepresentable",
    )


def decode_result(kind: str, payload: Any) -> Any:
    """Inverse of :func:`encode_result` (client side)."""
    if kind == RELATION:
        return decode_relation(payload)
    if kind == BOOLEAN:
        return bool(payload)
    if kind == COUNT_RESULT:
        if isinstance(payload, bool) or not isinstance(payload, int):
            raise ProtocolError("count result must be an integer")
        return payload
    if kind == TEXT:
        return str(payload)
    raise ProtocolError(f"unexpected result kind {kind!r}")


def encode_database(database: Any) -> Dict[str, Any]:
    """A deterministic JSON document for a whole database.

    The payload of the ``register_database`` op: one
    :func:`encode_relation` payload per relation (so the same
    byte-determinism guarantees hold) plus the declared domain when it is
    JSON-representable.  Mirrors the on-disk document of
    :mod:`repro.relational.io`, so a fixture file and a wire registration
    describe the same database identically.
    """
    relations = {
        name: encode_relation(database[name]) for name in sorted(database.names())
    }
    payload: Dict[str, Any] = {"relations": relations}
    domain = sorted(database.domain(), key=repr)
    if all(isinstance(value, _WIRE_SCALARS) for value in domain):
        payload["domain"] = domain
    return payload


def decode_database(payload: Any) -> Any:
    """Inverse of :func:`encode_database` (server side).

    Returns a :class:`~repro.relational.database.Database`; malformed
    documents raise :class:`ProtocolError` so the server answers a typed
    ``bad_request`` instead of an internal error.
    """
    from ..relational.database import Database

    if not isinstance(payload, dict):
        raise ProtocolError("database payload must be an object")
    relations = payload.get("relations")
    if not isinstance(relations, dict) or not relations:
        raise ProtocolError(
            "database payload needs a nonempty 'relations' mapping"
        )
    decoded = {
        str(name): decode_relation(relation)
        for name, relation in relations.items()
    }
    domain = payload.get("domain")
    if domain is not None:
        if not isinstance(domain, list):
            raise ProtocolError("database 'domain' must be a list")
        try:
            return Database(decoded, domain=domain)
        except ReproError as error:
            raise ProtocolError(
                f"database domain is inconsistent with its rows: {error}"
            ) from error
    return Database(decoded)


def query_text(query: Any) -> str:
    """The wire form of a query: rule-notation text.

    Accepts text verbatim, or anything whose ``repr`` is rule notation
    (``ConjunctiveQuery`` prints exactly the grammar the parser reads).
    """
    if isinstance(query, str):
        return query
    return repr(query)


__all__ = [
    "AGGREGATE",
    "BATCH_OPS",
    "BOOLEAN",
    "BOOLEANS",
    "CANCEL",
    "CANCELLED",
    "COUNT",
    "COUNT_RESULT",
    "DECIDE",
    "DECIDE_BATCH",
    "ERROR",
    "EXECUTE",
    "EXECUTE_BATCH",
    "EXPLAIN",
    "ErrorInfo",
    "OPS",
    "PING",
    "PONG",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QUERY_OPS",
    "REGISTERED",
    "REGISTER_DATABASE",
    "RELATION",
    "RELATIONS",
    "RESULTS",
    "RESULT_KINDS",
    "RUN_BATCH",
    "RemoteQueryError",
    "Request",
    "Response",
    "STATS",
    "STATS_RESULT",
    "TEXT",
    "decode_database",
    "decode_relation",
    "decode_result",
    "encode_database",
    "encode_relation",
    "encode_result",
    "query_text",
]
