"""Binary relation frames: a negotiated bulk encoding for relation payloads.

The line protocol of :mod:`.codec` serializes relations as JSON rows —
readable and canonical, but every value is re-spelled once per occurrence.
Result relations repeat a small active domain across thousands of rows, so
the bulk of a large response line is the same few value spellings over and
over.  A **binary relation frame** dictionary-encodes exactly that
redundancy away while leaving everything else JSON:

``MAGIC`` (1 byte, ``0x00``) · kind (1 byte, ``0x01``) · body length
(u32, big-endian) · body.  JSON frames always start with ``{`` (0x7b), so
the single magic byte is enough for a reader to tell the framings apart —
both peers run the same two-way reader and a connection can interleave
JSON and binary frames freely.

The body is::

    u32  header length
    ...  header: the message's canonical JSON with every relation payload
         ({"attributes": [...], "rows": [[...], ...]} objects) replaced by
         a {"__relation_frame__": i} marker
    u32  relation count
    ...  one block per relation, in marker order:
           u16  attribute count, then per attribute: u16 length + UTF-8 name
           u32  pool size, then per pool entry: u32 length + the value's
                canonical JSON text
           u32  row count
           u8   code width in bytes (1, 2 or 4, by pool size)
           ...  column-major codes: attribute count × row count fixed-width
                big-endian unsigned integers indexing the pool

The pool is keyed by the value's canonical **JSON text**, not the Python
value — ``true`` and ``1`` (or ``-0.0`` and ``0.0``) stay distinct
entries, so decode→re-encode round-trips are byte-exact and the protocol's
byte-comparison properties carry over unchanged.

``encode_binary`` returns ``None`` whenever the binary form is not
applicable — no relation payloads in the message, or the (pathological)
case of a payload already containing a ``__relation_frame__`` key — and
the caller falls back to the JSON line.  Frames are negotiated per
connection: a client announces :data:`BINARY_FRAMES_V1` in the ``frames``
field of a ``ping`` and the server answers with the subset it accepts;
only after that does either side *send* binary (readers accept both
framings unconditionally — the magic byte is unambiguous).
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, BinaryIO, Dict, List, Optional, Tuple

from .codec import MAX_LINE_BYTES, Message, decode_payload
from .messages import ProtocolError

#: First byte of every binary frame.  JSON lines start with ``{`` (0x7b),
#: so a leading NUL unambiguously marks the binary framing.
MAGIC = 0x00

#: Frame kind byte: a whole protocol message with extracted relations.
KIND_MESSAGE = 0x01

#: The negotiation token for this frame format (``ping``'s ``frames``).
BINARY_FRAMES_V1 = "relation-columns-v1"

#: Every frame format this build speaks.
SUPPORTED_FRAMES = (BINARY_FRAMES_V1,)

_MARKER = "__relation_frame__"
_WIRE_SCALARS = (str, int, float, bool, type(None))
_WIDTHS = ((0xFF, 1, "B"), (0xFFFF, 2, "H"), (0xFFFFFFFF, 4, "I"))


def _dumps(value: Any) -> str:
    """The canonical JSON spelling the line codec uses, per value."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"), ensure_ascii=False)


def _is_relation_payload(node: Any) -> bool:
    """Exactly the shape :func:`~.messages.encode_relation` emits."""
    if not isinstance(node, dict) or set(node) != {"attributes", "rows"}:
        return False
    attributes = node["attributes"]
    rows = node["rows"]
    if not isinstance(attributes, list) or not isinstance(rows, list):
        return False
    if not all(isinstance(name, str) for name in attributes):
        return False
    width = len(attributes)
    for row in rows:
        if not isinstance(row, list) or len(row) != width:
            return False
        if not all(isinstance(value, _WIRE_SCALARS) for value in row):
            return False
    return True


def _extract(node: Any, relations: List[Dict[str, Any]]) -> Any:
    """Copy *node* with relation payloads swapped for markers (post-order)."""
    if isinstance(node, dict):
        if _MARKER in node:
            raise _MarkerCollision()
        if _is_relation_payload(node):
            relations.append(node)
            return {_MARKER: len(relations) - 1}
        return {key: _extract(value, relations) for key, value in node.items()}
    if isinstance(node, list):
        return [_extract(item, relations) for item in node]
    return node


def _restore(node: Any, relations: List[Dict[str, Any]]) -> Any:
    """Inverse of :func:`_extract` (mutating the decoded header in place)."""
    if isinstance(node, dict):
        if set(node) == {_MARKER}:
            index = node[_MARKER]
            if (
                not isinstance(index, int)
                or isinstance(index, bool)
                or not 0 <= index < len(relations)
            ):
                raise ProtocolError(
                    f"binary frame references relation {index!r} of "
                    f"{len(relations)}"
                )
            return relations[index]
        return {key: _restore(value, relations) for key, value in node.items()}
    if isinstance(node, list):
        return [_restore(item, relations) for item in node]
    return node


class _MarkerCollision(Exception):
    """A payload already contains the marker key; binary is not applicable."""


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------


def _encode_relation_block(payload: Dict[str, Any], out: List[bytes]) -> None:
    attributes: List[str] = payload["attributes"]
    rows: List[List[Any]] = payload["rows"]
    out.append(struct.pack(">H", len(attributes)))
    for name in attributes:
        raw = name.encode("utf-8")
        out.append(struct.pack(">H", len(raw)))
        out.append(raw)
    # Dictionary-encode by canonical JSON text: distinct spellings stay
    # distinct codes, so decode→re-encode is byte-exact.  The memo keys
    # by (type, value) so each distinct value is JSON-spelled once, not
    # once per cell; floats key by hex() to keep -0.0 and 0.0 apart.
    pool: Dict[str, int] = {}
    memo: Dict[Any, int] = {}
    columns: List[List[int]] = [[] for _ in attributes]
    for row in rows:
        for position, value in enumerate(row):
            cls = value.__class__
            memo_key = (cls, value.hex()) if cls is float else (cls, value)
            code = memo.get(memo_key)
            if code is None:
                code = pool.setdefault(_dumps(value), len(pool))
                memo[memo_key] = code
            columns[position].append(code)
    out.append(struct.pack(">I", len(pool)))
    for text in pool:  # insertion order == code order
        raw = text.encode("utf-8")
        out.append(struct.pack(">I", len(raw)))
        out.append(raw)
    for bound, width, fmt in _WIDTHS:
        if len(pool) <= bound + 1:
            break
    out.append(struct.pack(">IB", len(rows), width))
    for codes in columns:
        out.append(struct.pack(f">{len(codes)}{fmt}", *codes))


def encode_binary(message: Message) -> Optional[bytes]:
    """The binary frame for *message*, or ``None`` when not applicable.

    ``None`` means "use the JSON line": the message carries no relation
    payloads (the frame would only add overhead), a payload already uses
    the marker key, or the frame would exceed :data:`~.codec.MAX_LINE_BYTES`.
    """
    payload = message.to_wire()
    relations: List[Dict[str, Any]] = []
    try:
        header_payload = _extract(payload, relations)
    except _MarkerCollision:
        return None
    if not relations:
        return None
    header = _dumps(header_payload).encode("utf-8")
    parts: List[bytes] = [struct.pack(">I", len(header)), header]
    parts.append(struct.pack(">I", len(relations)))
    for relation in relations:
        _encode_relation_block(relation, parts)
    body = b"".join(parts)
    frame = struct.pack(">BBI", MAGIC, KIND_MESSAGE, len(body)) + body
    if len(frame) > MAX_LINE_BYTES:
        return None
    return frame


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------


class _Cursor:
    """Bounds-checked sequential reader over a frame body."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise ProtocolError(
                f"binary frame truncated: needed {n} bytes at offset "
                f"{self.pos}, body is {len(self.data)}"
            )
        chunk = self.data[self.pos : end]
        self.pos = end
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return struct.unpack(">H", self.take(2))[0]

    def u32(self) -> int:
        return struct.unpack(">I", self.take(4))[0]

    def text(self, length: int) -> str:
        try:
            return self.take(length).decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"binary frame text is not UTF-8: {error}") from error


def _decode_relation_block(cursor: _Cursor) -> Dict[str, Any]:
    attributes = [cursor.text(cursor.u16()) for _ in range(cursor.u16())]
    pool: List[Any] = []
    for _ in range(cursor.u32()):
        text = cursor.text(cursor.u32())
        try:
            pool.append(json.loads(text))
        except json.JSONDecodeError as error:
            raise ProtocolError(
                f"binary frame pool entry is not JSON: {error.msg}"
            ) from error
    nrows = cursor.u32()
    width = cursor.u8()
    for bound, expected_width, fmt in _WIDTHS:
        if expected_width == width:
            break
    else:
        raise ProtocolError(f"binary frame code width {width} is not 1, 2 or 4")
    value_columns: List[List[Any]] = []
    for _ in attributes:
        codes = struct.unpack(f">{nrows}{fmt}", cursor.take(nrows * width))
        if codes and max(codes) >= len(pool):
            raise ProtocolError(
                f"binary frame code {max(codes)} exceeds pool of {len(pool)}"
            )
        value_columns.append([pool[code] for code in codes])
    if attributes:
        rows = [list(values) for values in zip(*value_columns)]
    else:
        # Zero-arity relations still carry 0 or 1 (empty) rows.
        rows = [[] for _ in range(nrows)]
    return {"attributes": attributes, "rows": rows}


def decode_binary(body: bytes) -> Message:
    """Parse one binary frame *body* back into a request or response."""
    cursor = _Cursor(body)
    header = cursor.text(cursor.u32())
    try:
        payload = json.loads(header)
    except json.JSONDecodeError as error:
        raise ProtocolError(
            f"binary frame header is not JSON: {error.msg}", code="not_json"
        ) from error
    if not isinstance(payload, dict):
        raise ProtocolError("binary frame header must be a JSON object")
    relations = [_decode_relation_block(cursor) for _ in range(cursor.u32())]
    if cursor.pos != len(body):
        raise ProtocolError(
            f"binary frame has {len(body) - cursor.pos} trailing byte(s)"
        )
    return decode_payload(_restore(payload, relations))


def binary_request_id_of(body: bytes) -> Optional[int]:
    """Best-effort request id from a possibly invalid binary frame body."""
    try:
        cursor = _Cursor(body)
        payload = json.loads(cursor.text(cursor.u32()))
    except Exception:  # noqa: BLE001 — best effort by contract
        return None
    if not isinstance(payload, dict):
        return None
    candidate = payload.get("id")
    if isinstance(candidate, bool) or not isinstance(candidate, int):
        return None
    return candidate if candidate >= 0 else None


# ----------------------------------------------------------------------
# Two-way frame readers (JSON lines and binary frames on one stream)
# ----------------------------------------------------------------------

#: Tag for a JSON line frame (the payload is the raw line).
JSON_FRAME = "json"
#: Tag for a binary frame (the payload is the frame body).
BINARY_FRAME = "binary"


def _check_frame_prefix(kind: int, length: int) -> None:
    if kind != KIND_MESSAGE:
        raise ProtocolError(f"unknown binary frame kind {kind:#04x}")
    if length > MAX_LINE_BYTES:
        raise ProtocolError(
            f"binary frame of {length} bytes exceeds the {MAX_LINE_BYTES} bound",
            code="frame_too_large",
            bytes=length,
        )


async def read_frame_async(reader: asyncio.StreamReader) -> Tuple[str, bytes]:
    """One frame from an asyncio stream: ``(tag, payload)``.

    Returns ``(JSON_FRAME, b"")`` at EOF (mirroring ``readline``); blank
    keep-alive lines come back as ``(JSON_FRAME, b"\\n")``.
    """
    first = await reader.read(1)
    if not first:
        return JSON_FRAME, b""
    if first[0] == MAGIC:
        try:
            prefix = await reader.readexactly(5)
            kind, length = struct.unpack(">BI", prefix)
            _check_frame_prefix(kind, length)
            return BINARY_FRAME, await reader.readexactly(length)
        except asyncio.IncompleteReadError as error:
            raise ConnectionError("connection closed mid binary frame") from error
    if first == b"\n":
        return JSON_FRAME, b"\n"
    return JSON_FRAME, first + await reader.readline()


def read_frame_blocking(stream: BinaryIO) -> Tuple[str, bytes]:
    """Blocking-file twin of :func:`read_frame_async` (socket makefile)."""
    first = stream.read(1)
    if not first:
        return JSON_FRAME, b""
    if first[0] == MAGIC:
        prefix = stream.read(5)
        if len(prefix) < 5:
            raise ConnectionError("connection closed mid binary frame")
        kind, length = struct.unpack(">BI", prefix)
        _check_frame_prefix(kind, length)
        body = stream.read(length)
        if len(body) < length:
            raise ConnectionError("connection closed mid binary frame")
        return BINARY_FRAME, body
    if first == b"\n":
        return JSON_FRAME, b"\n"
    return JSON_FRAME, first + stream.readline()


def negotiate_frames(requested: Any) -> Tuple[str, ...]:
    """The subset of *requested* frame formats this build speaks, in our
    preference order (the server's side of the ``ping`` negotiation)."""
    if not isinstance(requested, (list, tuple)):
        return ()
    wanted = {name for name in requested if isinstance(name, str)}
    return tuple(name for name in SUPPORTED_FRAMES if name in wanted)


__all__ = [
    "BINARY_FRAME",
    "BINARY_FRAMES_V1",
    "JSON_FRAME",
    "KIND_MESSAGE",
    "MAGIC",
    "SUPPORTED_FRAMES",
    "binary_request_id_of",
    "decode_binary",
    "encode_binary",
    "negotiate_frames",
    "read_frame_async",
    "read_frame_blocking",
]
