"""Networked query protocol: the service front-end goes cross-process.

A line-delimited JSON wire protocol (:mod:`.messages` / :mod:`.codec`),
an asyncio TCP server fronting one shared
:class:`~repro.service.QueryService` (:mod:`.server`), and sync + async
clients (:mod:`.client`).  Every evaluation mode of the paper's workloads
— evaluation, decision, and batches of either — is first-class on the
wire, failures come back as a structured error taxonomy, and per-client
fairness on the service's admission queue keeps one flooding connection
from starving the rest.  See ``docs/protocol.md``.
"""

from .client import AsyncQueryClient, QueryClient
from .codec import (
    MAX_LINE_BYTES,
    decode,
    encode,
    error_info,
    error_response,
    request_id_of,
)
from .frames import (
    BINARY_FRAMES_V1,
    SUPPORTED_FRAMES,
    decode_binary,
    encode_binary,
)
from .messages import (
    CANCEL,
    CANCELLED,
    OPS,
    PROTOCOL_VERSION,
    QUERY_OPS,
    REGISTER_DATABASE,
    REGISTERED,
    RUN_BATCH,
    ErrorInfo,
    ProtocolError,
    RemoteQueryError,
    Request,
    Response,
    decode_database,
    decode_relation,
    decode_result,
    encode_database,
    encode_relation,
    encode_result,
    query_text,
)
from .server import QueryServer, stats_payload

__all__ = [
    "AsyncQueryClient",
    "BINARY_FRAMES_V1",
    "CANCEL",
    "CANCELLED",
    "ErrorInfo",
    "MAX_LINE_BYTES",
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QUERY_OPS",
    "QueryClient",
    "QueryServer",
    "REGISTERED",
    "REGISTER_DATABASE",
    "RUN_BATCH",
    "RemoteQueryError",
    "Request",
    "Response",
    "SUPPORTED_FRAMES",
    "decode",
    "decode_binary",
    "decode_database",
    "decode_relation",
    "decode_result",
    "encode",
    "encode_binary",
    "encode_database",
    "encode_relation",
    "encode_result",
    "error_info",
    "error_response",
    "query_text",
    "request_id_of",
    "stats_payload",
]
