"""Query clients: an asyncio pipelining client and a blocking socket one.

Two flavors, one wire dialect:

:class:`AsyncQueryClient`
    For asyncio callers (the benchmark harness, the fairness tests).  A
    background reader task correlates responses to requests by id, so a
    caller may have **many requests in flight on one connection** — which
    is exactly how a flooding client exercises the server's fairness
    lanes and per-client backpressure.

:class:`QueryClient`
    A small blocking client over a plain socket, for threads and scripts
    (the cross-process stress drives 16 of these from worker threads).
    One outstanding request at a time; out-of-order responses (possible
    when an earlier error response overtakes) are buffered by id.

Both raise :class:`~.messages.RemoteQueryError` carrying the server's
structured code/message/detail when a request fails, and both accept
queries as rule-notation text or as ``ConjunctiveQuery`` objects (whose
``repr`` *is* the text form).
"""

from __future__ import annotations

import asyncio
import socket
from itertools import count
from typing import Any, Dict, List, Optional, Sequence

from ..relational.relation import Relation
from .codec import MAX_LINE_BYTES, decode, encode
from .messages import (
    DECIDE,
    DECIDE_BATCH,
    EXECUTE,
    EXECUTE_BATCH,
    EXPLAIN,
    PING,
    ProtocolError,
    RemoteQueryError,
    Request,
    Response,
    STATS,
    decode_relation,
    query_text,
)


def _raise_for(response: Response) -> Response:
    if response.error is not None:
        raise RemoteQueryError(
            code=response.error.code,
            message=response.error.message,
            detail=response.error.detail,
            request_id=response.id,
        )
    return response


class AsyncQueryClient:
    """Pipelined asyncio client: many requests in flight per connection."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = count(1)
        self._pending: Dict[int, "asyncio.Future[Response]"] = {}
        self._closed = False
        self._broken: Optional[BaseException] = None
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncQueryClient":
        # The protocol allows frames up to MAX_LINE_BYTES; asyncio's
        # default 64 KiB reader limit would kill the connection on the
        # first large result relation.
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES
        )
        return cls(reader, writer)

    # ------------------------------------------------------------------

    async def _read_loop(self) -> None:
        error: BaseException = ConnectionError("server closed the connection")
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                message = decode(line)
                if not isinstance(message, Response):
                    raise ProtocolError("server sent a request frame")
                if message.id is None:
                    # Connection-level error: no request to attribute it
                    # to — it is fatal to the connection, so it raises
                    # here and the finally block delivers it to every
                    # outstanding caller and marks the client broken.
                    _raise_for(message)
                future = self._pending.pop(message.id, None)
                if future is not None and not future.done():
                    future.set_result(message)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # noqa: BLE001 — delivered to callers
            error = exc
        finally:
            # Once the reader is gone, nothing can ever resolve a pending
            # future — fail the outstanding ones and refuse new requests
            # (a silent forever-hang is the one unacceptable outcome).
            self._broken = error
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(error)
            self._pending.clear()

    async def _request(self, op: str, **fields: Any) -> Response:
        if self._closed:
            raise RuntimeError("AsyncQueryClient is closed")
        if self._broken is not None:
            raise ConnectionError(
                f"connection is broken: {self._broken}"
            ) from self._broken
        request = Request(op=op, id=next(self._ids), **fields)
        future: "asyncio.Future[Response]" = asyncio.get_running_loop().create_future()
        self._pending[request.id] = future
        self._writer.write(encode(request))
        await self._writer.drain()
        return _raise_for(await future)

    # ------------------------------------------------------------------
    # The facade, over the wire
    # ------------------------------------------------------------------

    async def execute(self, query: Any, database: str) -> Relation:
        response = await self._request(
            EXECUTE, query=query_text(query), database=database
        )
        return decode_relation(response.result)

    async def decide(self, query: Any, database: str) -> bool:
        response = await self._request(
            DECIDE, query=query_text(query), database=database
        )
        return bool(response.result)

    async def explain(self, query: Any, database: str) -> str:
        response = await self._request(
            EXPLAIN, query=query_text(query), database=database
        )
        return str(response.result)

    async def execute_batch(
        self, queries: Sequence[Any], database: str
    ) -> List[Relation]:
        response = await self._request(
            EXECUTE_BATCH,
            queries=tuple(query_text(query) for query in queries),
            database=database,
        )
        return [decode_relation(payload) for payload in response.result]

    async def decide_batch(
        self, queries: Sequence[Any], database: str
    ) -> List[bool]:
        response = await self._request(
            DECIDE_BATCH,
            queries=tuple(query_text(query) for query in queries),
            database=database,
        )
        return [bool(decision) for decision in response.result]

    async def stats(self) -> Dict[str, Any]:
        response = await self._request(STATS)
        return dict(response.result)

    async def ping(self) -> bool:
        await self._request(PING)
        return True

    # ------------------------------------------------------------------

    async def aclose(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):  # noqa: BLE001
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass

    async def __aenter__(self) -> "AsyncQueryClient":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()


class QueryClient:
    """Blocking client over a plain socket (threads, scripts, REPLs).

    A socket timeout (default 30 s) or any transport/framing failure is
    **fatal to the connection**: a timeout can fire mid-frame with bytes
    already consumed, after which the line framing cannot resynchronize —
    so the client marks itself broken and every later request raises
    instead of decoding garbage.
    """

    def __init__(
        self, host: str, port: int, timeout: Optional[float] = 30.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._ids = count(1)
        self._stash: Dict[int, Response] = {}
        self._closed = False
        self._broken: Optional[BaseException] = None

    # ------------------------------------------------------------------

    def _request(self, op: str, **fields: Any) -> Response:
        if self._closed:
            raise RuntimeError("QueryClient is closed")
        if self._broken is not None:
            raise ConnectionError(
                f"connection is broken: {self._broken}"
            ) from self._broken
        request = Request(op=op, id=next(self._ids), **fields)
        try:
            self._file.write(encode(request))
            self._file.flush()
            stashed = self._stash.pop(request.id, None)
            if stashed is not None:
                return _raise_for(stashed)
            while True:
                line = self._file.readline()
                if not line:
                    raise ConnectionError("server closed the connection")
                message = decode(line)
                if not isinstance(message, Response):
                    raise ProtocolError("server sent a request frame")
                if message.id == request.id or message.id is None:
                    return _raise_for(message)
                self._stash[message.id] = message
        except (OSError, ProtocolError) as exc:
            # Timeouts (socket.timeout is OSError) and framing failures
            # leave the stream position undefined — poison the client.
            self._broken = exc
            raise

    # ------------------------------------------------------------------

    def execute(self, query: Any, database: str) -> Relation:
        response = self._request(EXECUTE, query=query_text(query), database=database)
        return decode_relation(response.result)

    def decide(self, query: Any, database: str) -> bool:
        response = self._request(DECIDE, query=query_text(query), database=database)
        return bool(response.result)

    def explain(self, query: Any, database: str) -> str:
        response = self._request(EXPLAIN, query=query_text(query), database=database)
        return str(response.result)

    def execute_batch(self, queries: Sequence[Any], database: str) -> List[Relation]:
        response = self._request(
            EXECUTE_BATCH,
            queries=tuple(query_text(query) for query in queries),
            database=database,
        )
        return [decode_relation(payload) for payload in response.result]

    def decide_batch(self, queries: Sequence[Any], database: str) -> List[bool]:
        response = self._request(
            DECIDE_BATCH,
            queries=tuple(query_text(query) for query in queries),
            database=database,
        )
        return [bool(decision) for decision in response.result]

    def stats(self) -> Dict[str, Any]:
        return dict(self._request(STATS).result)

    def ping(self) -> bool:
        self._request(PING)
        return True

    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "QueryClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


__all__ = ["AsyncQueryClient", "QueryClient"]
