"""Query clients: an asyncio pipelining client and a blocking socket one.

Two flavors, one wire dialect:

:class:`AsyncQueryClient`
    For asyncio callers (the benchmark harness, the fairness tests).  A
    background reader task correlates responses to requests by id, so a
    caller may have **many requests in flight on one connection** — which
    is exactly how a flooding client exercises the server's fairness
    lanes and per-client backpressure.

:class:`QueryClient`
    A small blocking client over a plain socket, for threads and scripts
    (the cross-process stress drives 16 of these from worker threads).
    One outstanding request at a time; out-of-order responses (possible
    when an earlier error response overtakes) are buffered by id.

Both raise :class:`~.messages.RemoteQueryError` carrying the server's
structured code/message/detail when a request fails, and both accept
queries as rule-notation text or as ``ConjunctiveQuery`` objects (whose
``repr`` *is* the text form).

Resilience (see ``docs/resilience.md``):

* every query op takes an optional ``deadline`` (seconds) that rides the
  request frame — the server aborts the evaluation and answers
  ``deadline_exceeded`` instead of letting a runaway query hold its lane;
* both clients accept an opt-in :class:`~repro.resilience.RetryPolicy`;
  retryable failures (transport errors, transient server codes) trigger
  reconnect-and-retry with exponential backoff and deterministic jitter,
  and a spent budget raises :class:`~repro.errors.RetryExhaustedError`;
* an abrupt close fails every pending async request with
  :class:`~repro.errors.ConnectionLostError` — never a silent hang —
  carrying the server's final structured frame when there was one;
* the blocking client's socket timeout surfaces as the typed
  :class:`~repro.errors.RequestTimeoutError` (still an ``OSError``).
"""

from __future__ import annotations

import asyncio
import random
import socket
import time
from itertools import count
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ConnectionLostError, RequestTimeoutError, RetryExhaustedError
from ..operations import Operation
from ..relational.relation import Relation
from ..resilience.policy import RetryPolicy
from .codec import MAX_LINE_BYTES, decode, encode
from .frames import (
    BINARY_FRAME,
    SUPPORTED_FRAMES,
    decode_binary,
    encode_binary,
    read_frame_async,
    read_frame_blocking,
)
from .messages import (
    CANCEL,
    PING,
    ProtocolError,
    REGISTER_DATABASE,
    RUN_BATCH,
    RemoteQueryError,
    Request,
    Response,
    STATS,
    decode_result,
    encode_database,
    query_text,
)


def _raise_for(response: Response) -> Response:
    if response.error is not None:
        raise RemoteQueryError(
            code=response.error.code,
            message=response.error.message,
            detail=response.error.detail,
            request_id=response.id,
        )
    return response


def _wire_operation(operation: Operation) -> Dict[str, Any]:
    """One ``run_batch`` member entry for *operation*."""
    entry: Dict[str, Any] = {
        "op": operation.kind,
        "query": query_text(operation.query),
    }
    if operation.options:
        entry["options"] = operation.options_dict()
    return entry


def _decode_members(result: Any) -> List[Any]:
    """Decode a ``results`` payload's tagged members."""
    if not isinstance(result, list):
        raise ProtocolError("run_batch result must be a list")
    members = []
    for member in result:
        if not isinstance(member, dict) or "kind" not in member:
            raise ProtocolError("run_batch members must be tagged objects")
        members.append(decode_result(member["kind"], member.get("result")))
    return members


class AsyncQueryClient:
    """Pipelined asyncio client: many requests in flight per connection."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        retry: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        binary_frames: bool = False,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._retry = retry
        self._rng = rng if rng is not None else random.Random()
        self._host = host
        self._port = port
        self._ids = count(1)
        self._pending: Dict[int, "asyncio.Future[Response]"] = {}
        self._closed = False
        self._broken: Optional[BaseException] = None
        self._reconnects = 0
        self._connect_lock = asyncio.Lock()
        #: Opt-in: negotiate the binary relation framing after connecting.
        self._binary_requested = binary_frames
        #: True once the server accepted the binary framing (per connection).
        self._binary = False
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        retry: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
        binary_frames: bool = False,
    ) -> "AsyncQueryClient":
        # The protocol allows frames up to MAX_LINE_BYTES; asyncio's
        # default 64 KiB reader limit would kill the connection on the
        # first large result relation.
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES
        )
        client = cls(
            reader,
            writer,
            retry=retry,
            rng=rng,
            host=host,
            port=port,
            binary_frames=binary_frames,
        )
        if binary_frames:
            await client._negotiate_frames()
        return client

    @property
    def binary_frames(self) -> bool:
        """Did this connection negotiate the binary relation framing?"""
        return self._binary

    async def _negotiate_frames(self) -> None:
        """Offer our frame formats over ``ping``; adopt what the server
        accepts.  Pre-negotiation servers answer a plain pong — the
        client just stays on JSON lines."""
        response = await self._request(PING, frames=SUPPORTED_FRAMES)
        accepted = ()
        if isinstance(response.result, dict):
            accepted = tuple(response.result.get("frames") or ())
        self._binary = bool(accepted)

    @property
    def reconnects(self) -> int:
        """How many times the retry machinery re-opened the connection."""
        return self._reconnects

    # ------------------------------------------------------------------

    async def _read_loop(self) -> None:
        error: BaseException = ConnectionError("server closed the connection")
        try:
            while True:
                tag, line = await read_frame_async(self._reader)
                if not line:
                    break
                message = decode_binary(line) if tag == BINARY_FRAME else decode(line)
                if not isinstance(message, Response):
                    raise ProtocolError("server sent a request frame")
                if message.id is None:
                    # Connection-level error: no request to attribute it
                    # to — it is fatal to the connection, so it raises
                    # here and the finally block delivers it to every
                    # outstanding caller and marks the client broken.
                    _raise_for(message)
                future = self._pending.pop(message.id, None)
                if future is not None and not future.done():
                    future.set_result(message)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # noqa: BLE001 — delivered to callers
            error = exc
        finally:
            # Once the reader is gone, nothing can ever resolve a pending
            # future — fail the outstanding ones and refuse new requests
            # (a silent forever-hang is the one unacceptable outcome).
            # The server's final structured frame (e.g. a server_busy
            # rejection) is delivered verbatim; everything else — EOF,
            # torn frames, transport errors — becomes the typed
            # ConnectionLostError.
            if isinstance(error, (RemoteQueryError, ConnectionLostError)):
                delivered: BaseException = error
            else:
                delivered = ConnectionLostError(
                    f"connection lost with {len(self._pending)} request(s) "
                    f"pending: {error}"
                )
                delivered.__cause__ = error
            self._broken = delivered
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(delivered)
            self._pending.clear()

    async def _request(self, op: str, **fields: Any) -> Response:
        if self._closed:
            raise RuntimeError("AsyncQueryClient is closed")
        if self._broken is not None:
            raise ConnectionError(
                f"connection is broken: {self._broken}"
            ) from self._broken
        request = Request(op=op, id=next(self._ids), **fields)
        future: "asyncio.Future[Response]" = asyncio.get_running_loop().create_future()
        self._pending[request.id] = future
        data = encode_binary(request) if self._binary else None
        self._writer.write(data if data is not None else encode(request))
        await self._writer.drain()
        return _raise_for(await future)

    async def _reconnect(self) -> None:
        """Re-open the transport after a break (serialized across callers)."""
        async with self._connect_lock:
            if self._closed:
                raise RuntimeError("AsyncQueryClient is closed")
            if self._broken is None:
                return  # another caller already reconnected
            if self._host is None or self._port is None:
                raise ConnectionError(
                    "cannot reconnect: client was built from raw streams "
                    "(use AsyncQueryClient.connect for retryable clients)"
                ) from self._broken
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass
            reader, writer = await asyncio.open_connection(
                self._host, self._port, limit=MAX_LINE_BYTES
            )
            self._reader = reader
            self._writer = writer
            self._broken = None
            self._binary = False
            self._reconnects += 1
            self._reader_task = asyncio.ensure_future(self._read_loop())
            if self._binary_requested:
                await self._negotiate_frames()

    async def _call(self, op: str, **fields: Any) -> Response:
        """One request, retried under the client's policy when it has one."""
        policy = self._retry
        if policy is None:
            return await self._request(op, **fields)
        started = time.monotonic()
        attempt = 0
        last: Optional[BaseException] = None
        while True:
            attempt += 1
            try:
                if self._broken is not None:
                    await self._reconnect()
                return await self._request(op, **fields)
            except (RuntimeError, asyncio.CancelledError):
                raise  # closed client / caller teardown — never retried
            except BaseException as exc:  # noqa: BLE001 — classified below
                if not policy.retryable(exc):
                    raise
                last = exc
            if attempt >= policy.max_attempts:
                break
            delay = policy.delay_for(attempt, self._rng)
            if (
                policy.max_elapsed is not None
                and time.monotonic() - started + delay > policy.max_elapsed
            ):
                break
            await asyncio.sleep(delay)
        raise RetryExhaustedError(
            f"{op} failed after {attempt} attempt(s): {last}",
            attempts=attempt,
            last_error=last,
        ) from last

    # ------------------------------------------------------------------
    # The facade, over the wire: one generic run/run_batch pair, with the
    # typed methods as one-line wrappers
    # ------------------------------------------------------------------

    async def run(
        self,
        operation: Operation,
        database: str,
        *,
        deadline: Optional[float] = None,
    ) -> Any:
        """Run one :class:`~repro.operations.Operation` remotely.

        The operation kind travels as the wire op verbatim; the result is
        decoded by the response's declared kind (relation / boolean /
        count / text), so every typed facade is a one-liner over this.
        """
        operation.validate()
        response = await self._call(
            operation.kind,
            query=query_text(operation.query),
            database=database,
            deadline=deadline,
            options=operation.options_dict() or None,
        )
        return decode_result(response.kind, response.result)

    async def run_batch(
        self,
        operations: Sequence[Operation],
        database: str,
        *,
        deadline: Optional[float] = None,
    ) -> List[Any]:
        """Run a (possibly mixed-kind) batch of operations remotely."""
        for operation in operations:
            operation.validate()
        response = await self._call(
            RUN_BATCH,
            operations=tuple(_wire_operation(op) for op in operations),
            database=database,
            deadline=deadline,
        )
        return _decode_members(response.result)

    async def execute(
        self, query: Any, database: str, *, deadline: Optional[float] = None
    ) -> Relation:
        return await self.run(Operation.execute(query), database, deadline=deadline)

    async def decide(
        self, query: Any, database: str, *, deadline: Optional[float] = None
    ) -> bool:
        return await self.run(Operation.decide(query), database, deadline=deadline)

    async def explain(
        self, query: Any, database: str, *, deadline: Optional[float] = None
    ) -> str:
        return await self.run(Operation.explain(query), database, deadline=deadline)

    async def count(
        self, query: Any, database: str, *, deadline: Optional[float] = None
    ) -> int:
        return await self.run(Operation.count(query), database, deadline=deadline)

    async def grouped_count(
        self,
        query: Any,
        database: str,
        group_by: Sequence[str],
        *,
        deadline: Optional[float] = None,
    ) -> Relation:
        return await self.run(
            Operation.grouped_count(query, group_by), database, deadline=deadline
        )

    async def exists(
        self, query: Any, database: str, *, deadline: Optional[float] = None
    ) -> bool:
        return await self.run(Operation.exists(query), database, deadline=deadline)

    async def forall(
        self, query: Any, database: str, *, deadline: Optional[float] = None
    ) -> bool:
        return await self.run(Operation.forall(query), database, deadline=deadline)

    async def register_database(self, name: str, database: Any) -> List[str]:
        """Install *database* under *name* on the server, without restart.

        Accepts a :class:`~repro.relational.database.Database` (encoded
        via :func:`~.messages.encode_database`) or a pre-encoded document
        dict.  Returns the server's list of registered relation names.
        Idempotent — safe to retry and to replay against a respawned
        worker (the fleet supervisor does exactly that).
        """
        data = database if isinstance(database, dict) else encode_database(database)
        response = await self._call(REGISTER_DATABASE, database=name, data=data)
        return list(response.result["relations"])

    async def cancel(self, target: int) -> bool:
        """Ask the server to cancel in-flight request *target*.

        True when the server found the request still running and tore it
        down (the cancelled request itself answers with a structured
        ``cancelled`` error); False when it had already finished.  Sent
        directly — a cancel is never retried.
        """
        response = await self._request(CANCEL, target=target)
        return bool(response.result)

    def pending_ids(self) -> List[int]:
        """Request ids still awaiting a response — the targets ``cancel``
        accepts.  Ids are assigned in request order starting from 1."""
        return sorted(self._pending)

    async def stats(self) -> Dict[str, Any]:
        response = await self._call(STATS)
        return dict(response.result)

    async def ping(self) -> bool:
        await self._call(PING)
        return True

    # ------------------------------------------------------------------

    async def aclose(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):  # noqa: BLE001
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass

    async def __aenter__(self) -> "AsyncQueryClient":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()


class QueryClient:
    """Blocking client over a plain socket (threads, scripts, REPLs).

    A socket timeout (default 30 s) or any transport/framing failure is
    **fatal to the connection**: a timeout can fire mid-frame with bytes
    already consumed, after which the line framing cannot resynchronize —
    so the client marks itself broken and every later request raises
    instead of decoding garbage.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = 30.0,
        *,
        retry: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
        binary_frames: bool = False,
    ) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._retry = retry
        self._rng = rng if rng is not None else random.Random()
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._ids = count(1)
        self._stash: Dict[int, Response] = {}
        self._closed = False
        self._broken: Optional[BaseException] = None
        self._reconnects = 0
        self._binary_requested = binary_frames
        self._binary = False
        if binary_frames:
            self._negotiate_frames()

    @property
    def binary_frames(self) -> bool:
        """Did this connection negotiate the binary relation framing?"""
        return self._binary

    def _negotiate_frames(self) -> None:
        """Offer our frame formats over ``ping``; adopt what the server
        accepts (pre-negotiation servers answer a plain pong)."""
        response = self._request(PING, frames=SUPPORTED_FRAMES)
        accepted = ()
        if isinstance(response.result, dict):
            accepted = tuple(response.result.get("frames") or ())
        self._binary = bool(accepted)

    @property
    def reconnects(self) -> int:
        """How many times the retry machinery re-opened the connection."""
        return self._reconnects

    # ------------------------------------------------------------------

    def _request(self, op: str, **fields: Any) -> Response:
        if self._closed:
            raise RuntimeError("QueryClient is closed")
        if self._broken is not None:
            raise ConnectionError(
                f"connection is broken: {self._broken}"
            ) from self._broken
        request = Request(op=op, id=next(self._ids), **fields)
        try:
            data = encode_binary(request) if self._binary else None
            self._file.write(data if data is not None else encode(request))
            self._file.flush()
            stashed = self._stash.pop(request.id, None)
            if stashed is not None:
                return _raise_for(stashed)
            while True:
                tag, line = read_frame_blocking(self._file)
                if not line:
                    raise ConnectionError("server closed the connection")
                message = decode_binary(line) if tag == BINARY_FRAME else decode(line)
                if not isinstance(message, Response):
                    raise ProtocolError("server sent a request frame")
                if message.id == request.id or message.id is None:
                    return _raise_for(message)
                self._stash[message.id] = message
        except socket.timeout as exc:
            # The reply may still arrive later and desynchronize the
            # framing — poison the connection, answer typed.
            self._broken = exc
            raise RequestTimeoutError(
                f"no response within {self._timeout}s", timeout=self._timeout
            ) from exc
        except (OSError, ProtocolError) as exc:
            # Framing failures and transport errors leave the stream
            # position undefined — poison the client.
            self._broken = exc
            raise

    def _reconnect(self) -> None:
        """Re-open the socket after a break (single-threaded client)."""
        if self._closed:
            raise RuntimeError("QueryClient is closed")
        try:
            self._file.close()
        except OSError:
            pass
        self._sock.close()
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        self._file = self._sock.makefile("rwb")
        self._stash.clear()
        self._broken = None
        self._binary = False
        self._reconnects += 1
        if self._binary_requested:
            self._negotiate_frames()

    def _call(self, op: str, **fields: Any) -> Response:
        """One request, retried under the client's policy when it has one."""
        policy = self._retry
        if policy is None:
            return self._request(op, **fields)
        started = time.monotonic()
        attempt = 0
        last: Optional[BaseException] = None
        while True:
            attempt += 1
            try:
                if self._broken is not None:
                    self._reconnect()
                return self._request(op, **fields)
            except RuntimeError:
                raise  # closed client — never retried
            except BaseException as exc:  # noqa: BLE001 — classified below
                if not policy.retryable(exc):
                    raise
                last = exc
            if attempt >= policy.max_attempts:
                break
            delay = policy.delay_for(attempt, self._rng)
            if (
                policy.max_elapsed is not None
                and time.monotonic() - started + delay > policy.max_elapsed
            ):
                break
            time.sleep(delay)
        raise RetryExhaustedError(
            f"{op} failed after {attempt} attempt(s): {last}",
            attempts=attempt,
            last_error=last,
        ) from last

    # ------------------------------------------------------------------
    # The facade: one generic run/run_batch pair, typed one-line wrappers
    # ------------------------------------------------------------------

    def run(
        self,
        operation: Operation,
        database: str,
        *,
        deadline: Optional[float] = None,
    ) -> Any:
        """Run one :class:`~repro.operations.Operation` remotely."""
        operation.validate()
        response = self._call(
            operation.kind,
            query=query_text(operation.query),
            database=database,
            deadline=deadline,
            options=operation.options_dict() or None,
        )
        return decode_result(response.kind, response.result)

    def run_batch(
        self,
        operations: Sequence[Operation],
        database: str,
        *,
        deadline: Optional[float] = None,
    ) -> List[Any]:
        """Run a (possibly mixed-kind) batch of operations remotely."""
        for operation in operations:
            operation.validate()
        response = self._call(
            RUN_BATCH,
            operations=tuple(_wire_operation(op) for op in operations),
            database=database,
            deadline=deadline,
        )
        return _decode_members(response.result)

    def execute(
        self, query: Any, database: str, *, deadline: Optional[float] = None
    ) -> Relation:
        return self.run(Operation.execute(query), database, deadline=deadline)

    def decide(
        self, query: Any, database: str, *, deadline: Optional[float] = None
    ) -> bool:
        return self.run(Operation.decide(query), database, deadline=deadline)

    def explain(
        self, query: Any, database: str, *, deadline: Optional[float] = None
    ) -> str:
        return self.run(Operation.explain(query), database, deadline=deadline)

    def count(
        self, query: Any, database: str, *, deadline: Optional[float] = None
    ) -> int:
        return self.run(Operation.count(query), database, deadline=deadline)

    def grouped_count(
        self,
        query: Any,
        database: str,
        group_by: Sequence[str],
        *,
        deadline: Optional[float] = None,
    ) -> Relation:
        return self.run(
            Operation.grouped_count(query, group_by), database, deadline=deadline
        )

    def exists(
        self, query: Any, database: str, *, deadline: Optional[float] = None
    ) -> bool:
        return self.run(Operation.exists(query), database, deadline=deadline)

    def forall(
        self, query: Any, database: str, *, deadline: Optional[float] = None
    ) -> bool:
        return self.run(Operation.forall(query), database, deadline=deadline)

    def register_database(self, name: str, database: Any) -> List[str]:
        """Install *database* under *name* on the server (see the async
        client's docstring; same semantics, blocking)."""
        data = database if isinstance(database, dict) else encode_database(database)
        response = self._call(REGISTER_DATABASE, database=name, data=data)
        return list(response.result["relations"])

    def stats(self) -> Dict[str, Any]:
        return dict(self._call(STATS).result)

    def ping(self) -> bool:
        self._call(PING)
        return True

    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "QueryClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


__all__ = ["AsyncQueryClient", "QueryClient"]
