"""``QueryServer``: an asyncio TCP front-end over one shared service.

One listening socket, one :class:`~repro.service.QueryService`, one shared
:class:`~repro.engine.QueryEngine` — every connection's requests flow
through the same plan cache, single-flight map, and micro-batch
collectors, which is the entire point: the concurrency machinery PR 4
built in-process now serves *cross-process* traffic.

Per-connection mechanics:

* each connection gets a **client tag** (``conn-N``) that follows its
  requests into the service's fairness lanes — the round-robin drain of
  :class:`~repro.service.fairness.FairQueue` is what keeps one flooding
  connection from starving the rest;
* requests on one connection are handled **concurrently** (pipelining):
  the reader loop spawns a task per request and responses are written as
  they complete, correlated by request id;
* failures become **structured error responses** (:mod:`.codec`'s
  taxonomy) on the same connection — a parse error, an unknown database,
  or a backpressure rejection never costs the client its connection;
* shutdown **drains**: the listener closes first, in-flight requests
  finish and their responses flush, late requests get ``shutting_down``
  errors, and only then do connections and the owned service close.

Resilience mechanics (see ``docs/resilience.md``):

* a request's ``deadline`` flows into the service's
  :class:`~repro.resilience.CancelToken` machinery — oversized queries
  answer ``deadline_exceeded`` on time instead of holding their lane;
* a ``cancel`` op (or the client vanishing mid-request) tears the
  in-flight handler task down; the service releases the FairQueue slot
  and the target request answers with a typed ``cancelled`` error;
* ``max_connections`` rejects connections past the limit with a typed
  ``server_busy`` final frame; ``idle_timeout`` closes connections that
  stay silent — both surfaced in ``stats()``'s ``transport`` section;
* a :class:`~repro.resilience.FaultPlan` (constructor or the
  ``REPRO_FAULTS`` environment variable — the chaos suite drives
  subprocess servers through the latter) injects delayed responses,
  dropped connections, and torn frames at named sites.

The module doubles as the server executable::

    PYTHONPATH=src python -m repro.protocol.server \\
        --database movies=movies.json --port 0

which prints ``QUERYSERVER READY host=... port=...`` once the socket is
bound (the cross-process test harness reads that line) and drains
gracefully on SIGTERM/SIGINT.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from itertools import count
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from ..errors import CancelledRequestError, ReproError, ServerBusyError
from ..operations import DECIDE as OP_DECIDE
from ..operations import EXECUTE as OP_EXECUTE
from ..operations import Operation, operations_of
from ..relational.database import Database
from ..relational.io import load_database_json
from ..resilience.faults import FaultPlan
from ..service.service import QueryService
from ..service.stats import ServiceStats
from .codec import MAX_LINE_BYTES, decode, encode, error_response, request_id_of
from .frames import (
    BINARY_FRAME,
    binary_request_id_of,
    decode_binary,
    encode_binary,
    negotiate_frames,
    read_frame_async,
)
from .messages import (
    BOOLEANS,
    CANCEL,
    CANCELLED,
    DECIDE_BATCH,
    EXECUTE_BATCH,
    PING,
    PONG,
    ProtocolError,
    QUERY_OPS,
    REGISTER_DATABASE,
    REGISTERED,
    RELATIONS,
    RESULTS,
    RUN_BATCH,
    Request,
    Response,
    STATS,
    STATS_RESULT,
    decode_database,
    encode_relation,
    encode_result,
)


class _Connection:
    """Per-connection state: writer, write lock, in-flight request tasks."""

    __slots__ = ("client", "writer", "tasks", "lock", "inflight", "binary")

    def __init__(self, client: str, writer: asyncio.StreamWriter) -> None:
        self.client = client
        self.writer = writer
        self.tasks: "set[asyncio.Task[None]]" = set()
        self.lock = asyncio.Lock()
        #: Request id → handler task, while the request is in flight.  The
        #: ``cancel`` op and disconnect teardown both cancel through here.
        self.inflight: Dict[int, "asyncio.Task[None]"] = {}
        #: Did this client negotiate binary relation frames (via ``ping``)?
        self.binary = False

    async def send(self, response: Response) -> None:
        """Write one response frame atomically (pipelined tasks interleave).

        After a client negotiates binary frames, relation-bearing
        responses go out in the binary framing; everything else (and any
        message the binary encoder declines) stays a JSON line.
        """
        data: Optional[bytes] = None
        if self.binary:
            data = encode_binary(response)
        if data is None:
            data = encode(response)
        async with self.lock:
            if self.writer.is_closing():
                return
            self.writer.write(data)
            try:
                await self.writer.drain()
            except (ConnectionError, RuntimeError):
                pass  # peer vanished mid-write; the reader loop will see EOF

    async def settle(self) -> None:
        """Wait for every in-flight request task (responses flushed)."""
        while self.tasks:
            await asyncio.gather(*list(self.tasks), return_exceptions=True)


class QueryServer:
    """A line-delimited JSON TCP server over named databases.

    Parameters
    ----------
    databases:
        Name → :class:`Database` the server exposes; requests address
        databases by these names.
    host, port:
        Bind address.  ``port=0`` picks a free port (see :attr:`address`
        after :meth:`start`).
    service:
        An externally owned service to front.  ``None`` constructs one
        (forwarding ``service_kwargs``) that the server owns and closes.
    max_connections:
        Accept at most this many concurrent connections; the next one
        gets a single ``server_busy`` error frame and is closed.
        ``None`` (default) means unbounded.
    idle_timeout:
        Close a connection after this many seconds without a complete
        request frame.  ``None`` (default) keeps silent connections open.
    fault_plan:
        Deterministic fault injection for the chaos suite.  ``None``
        reads :data:`~repro.resilience.faults.FAULTS_ENV_VAR` so
        subprocess servers inherit the plan from their environment.
    """

    def __init__(
        self,
        databases: Mapping[str, Database],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        service: Optional[QueryService] = None,
        max_connections: Optional[int] = None,
        idle_timeout: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        **service_kwargs: Any,
    ) -> None:
        if service is not None and service_kwargs:
            raise ValueError(
                "pass service_kwargs only when the server constructs the "
                f"service; got both a service and {sorted(service_kwargs)}"
            )
        if max_connections is not None and max_connections < 1:
            raise ValueError(f"max_connections must be >= 1, got {max_connections}")
        if idle_timeout is not None and idle_timeout <= 0:
            raise ValueError(f"idle_timeout must be positive, got {idle_timeout}")
        self._databases = dict(databases)
        self._host = host
        self._port = port
        self._service = (
            service if service is not None else QueryService(**service_kwargs)
        )
        self._owns_service = service is None
        self._max_connections = max_connections
        self._idle_timeout = idle_timeout
        if fault_plan is None:
            fault_plan = FaultPlan.from_env()
        self._faults = fault_plan if fault_plan else None
        #: op → handler coroutine.  Every query op (execute / decide /
        #: explain / count / aggregate — the wire mirror of
        #: :data:`repro.operations.OP_KINDS`) shares ``_op_query``, so a
        #: new engine operation reaches the wire by appearing in
        #: ``QUERY_OPS``; only transport-level ops get bespoke handlers.
        self._op_table = {
            **{op: self._op_query for op in QUERY_OPS},
            RUN_BATCH: self._op_run_batch,
            EXECUTE_BATCH: self._op_execute_batch,
            DECIDE_BATCH: self._op_decide_batch,
            PING: self._op_ping,
            STATS: self._op_stats,
            CANCEL: self._op_cancel,
            REGISTER_DATABASE: self._op_register_database,
        }
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Dict[str, _Connection] = {}
        self._handler_tasks: "set[asyncio.Task[None]]" = set()
        self._conn_ids = count(1)
        self._draining = False
        self._closed = False
        # Transport-level counters (loop thread only, like the service's).
        self._connections_total = 0
        self._busy_rejections = 0
        self._idle_closed = 0
        self._cancel_requests = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket (idempotent)."""
        if self._server is not None:
            return
        if self._closed:
            raise RuntimeError("QueryServer is closed")
        self._server = await asyncio.start_server(
            self._on_connection, self._host, self._port, limit=MAX_LINE_BYTES
        )

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — call after :meth:`start`."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return (host, port)

    @property
    def service(self) -> QueryService:
        """The service behind the socket (shared engine, fairness lanes)."""
        return self._service

    async def aclose(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, then close."""
        if self._closed:
            return
        self._closed = True
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # In-flight requests complete and their responses flush before any
        # connection is torn down.
        for connection in list(self._connections.values()):
            await connection.settle()
        for connection in list(self._connections.values()):
            connection.writer.close()
        # Reader loops see the closed transports and unwind.
        if self._handler_tasks:
            await asyncio.gather(*list(self._handler_tasks), return_exceptions=True)
        if self._owns_service:
            await self._service.aclose()

    async def __aenter__(self) -> "QueryServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
            task.add_done_callback(self._handler_tasks.discard)
        client = f"conn-{next(self._conn_ids)}"
        connection = _Connection(client, writer)
        if (
            self._max_connections is not None
            and len(self._connections) >= self._max_connections
        ):
            # One typed final frame, then hang up — the client's retry
            # policy treats server_busy as transient.
            self._busy_rejections += 1
            await connection.send(
                error_response(
                    None,
                    ServerBusyError(
                        f"connection limit of {self._max_connections} reached",
                        max_connections=self._max_connections,
                    ),
                )
            )
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass
            return
        self._connections_total += 1
        self._connections[client] = connection
        try:
            await self._read_loop(reader, connection)
        finally:
            self._connections.pop(client, None)
            # The reader is done — EOF, error, or idle timeout.  No test
            # or shipped client half-closes, so a vanished reader means a
            # vanished client: tear down its in-flight work instead of
            # letting it hold fairness-lane slots.  (On graceful drain the
            # connections were settled *before* their writers closed, so
            # there is nothing left to cancel here.)
            self._cancel_inflight(connection, "client disconnected")
            await connection.settle()
            connection.writer.close()
            try:
                await connection.writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    def _cancel_inflight(self, connection: _Connection, reason: str) -> None:
        """Tear down every in-flight handler task on *connection*.

        Cancellation propagates into the service's ``_await_result``,
        which releases the FairQueue slot (last-waiter teardown) — a
        vanished client cannot leave zombie work holding its lane.
        """
        for task in list(connection.inflight.values()):
            if not task.done():
                task.cancel(reason)

    async def _read_loop(
        self, reader: asyncio.StreamReader, connection: _Connection
    ) -> None:
        while True:
            try:
                if self._idle_timeout is not None:
                    try:
                        tag, line = await asyncio.wait_for(
                            read_frame_async(reader), self._idle_timeout
                        )
                    except asyncio.TimeoutError:
                        # Silent too long — one typed final frame, hang up.
                        self._idle_closed += 1
                        await connection.send(
                            error_response(
                                None,
                                CancelledRequestError(
                                    f"connection idle for more than "
                                    f"{self._idle_timeout}s",
                                    idle_timeout=self._idle_timeout,
                                ),
                            )
                        )
                        return
                else:
                    tag, line = await read_frame_async(reader)
            except ProtocolError as exc:
                # A malformed binary frame prefix cannot be resynchronized
                # — answer structurally, then hang up.
                await connection.send(error_response(None, exc))
                return
            except (ValueError, asyncio.LimitOverrunError):
                # An overlong frame cannot be resynchronized — answer
                # structurally, then hang up.
                await connection.send(
                    error_response(
                        None,
                        ProtocolError(
                            f"frame exceeds {MAX_LINE_BYTES} bytes",
                            code="frame_too_large",
                        ),
                    )
                )
                return
            except (ConnectionError, asyncio.IncompleteReadError):
                return
            if not line:
                return  # EOF: client is done sending
            if tag == BINARY_FRAME:
                decode_frame, id_of = decode_binary, binary_request_id_of
            else:
                if not line.strip():
                    continue  # blank keep-alive lines are free
                decode_frame, id_of = decode, request_id_of
            try:
                message = decode_frame(line)
                if not isinstance(message, Request):
                    raise ProtocolError("expected a request, got a response frame")
            except Exception as exc:  # noqa: BLE001 — answered structurally
                await connection.send(error_response(id_of(line), exc))
                continue
            if self._draining:
                await connection.send(
                    error_response(
                        message.id,
                        ProtocolError("server is shutting down", code="shutting_down"),
                    )
                )
                continue
            task = asyncio.ensure_future(self._handle(message, connection))
            connection.tasks.add(task)
            task.add_done_callback(connection.tasks.discard)

    async def _handle(self, request: Request, connection: _Connection) -> None:
        task = asyncio.current_task()
        if task is not None and request.id not in connection.inflight:
            connection.inflight[request.id] = task
            task.add_done_callback(
                lambda _t, rid=request.id: connection.inflight.pop(rid, None)
            )
        try:
            response = await self._dispatch(request, connection)
        except asyncio.CancelledError:
            # Torn down — explicit cancel op or disconnect.  Answer with a
            # typed error (best effort: the transport may already be gone)
            # and swallow the cancellation so the response can flush.
            await connection.send(
                error_response(
                    request.id,
                    CancelledRequestError("request was cancelled"),
                )
            )
            return
        except BaseException as exc:  # noqa: BLE001 — answered structurally
            response = error_response(request.id, exc)
        if self._faults is not None and not await self._inject_faults(
            request, connection
        ):
            return  # the fault consumed the response (drop / torn frame)
        try:
            await connection.send(response)
        except ProtocolError as exc:
            # The *response* could not be encoded (a result relation past
            # the frame bound).  The request still gets an answer — the
            # error response is tiny and always encodes.
            await connection.send(error_response(request.id, exc))

    async def _inject_faults(
        self, request: Request, connection: _Connection
    ) -> bool:
        """Fire response-path fault sites; False means "send no response"."""
        plan = self._faults
        assert plan is not None
        delay = plan.fire("server.delay")
        if delay is not None and delay.delay > 0:
            await asyncio.sleep(delay.delay)
        if plan.fire("server.drop") is not None:
            # The connection vanishes without an answer — the client sees
            # an abrupt close and its pending requests fail typed.
            transport = connection.writer.transport
            if transport is not None:
                transport.abort()
            return False
        if plan.fire("server.torn_frame") is not None:
            # Half a frame, then a hard close: the client's decoder must
            # fail loudly, never hand back a truncated result.
            data = encode(error_response(request.id, ProtocolError("torn")))
            async with connection.lock:
                if not connection.writer.is_closing():
                    connection.writer.write(data[: max(1, len(data) // 2)])
                    try:
                        await connection.writer.drain()
                    except (ConnectionError, RuntimeError):
                        pass
            transport = connection.writer.transport
            if transport is not None:
                transport.abort()
            return False
        return True

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------

    def _database(self, request: Request) -> Database:
        database = self._databases.get(request.database or "")
        if database is None:
            raise ProtocolError(
                f"unknown database {request.database!r}; this server has "
                f"{sorted(self._databases)}",
                code="unknown_database",
                database=str(request.database),
            )
        return database

    async def _dispatch(self, request: Request, connection: _Connection) -> Response:
        handler = self._op_table.get(request.op)
        if handler is None:
            raise ProtocolError(f"unknown op {request.op!r}")  # past validate()
        return await handler(request, connection)

    async def _op_query(self, request: Request, connection: _Connection) -> Response:
        """One generic handler for every single-operation query op.

        The wire op string is the operation kind, so building the
        :class:`~repro.operations.Operation` here (semantic option
        validation included — unknown options and malformed aggregate
        modes answer as typed errors) and running it through the
        service's generic ``run`` covers execute / decide / explain /
        count / aggregate without per-op code.
        """
        database = self._database(request)
        operation = Operation.make(request.op, request.query, request.options)
        value = await self._service.run(
            operation,
            database,
            client=connection.client,
            deadline=request.deadline,
        )
        kind, payload = encode_result(value)
        return Response(id=request.id, kind=kind, result=payload)

    async def _op_run_batch(
        self, request: Request, connection: _Connection
    ) -> Response:
        database = self._database(request)
        operations = [
            Operation.make(entry["op"], entry["query"], entry.get("options"))
            for entry in request.operations or ()
        ]
        values = await self._service.run_batch(
            operations,
            database,
            client=connection.client,
            deadline=request.deadline,
        )
        members = []
        for value in values:
            kind, payload = encode_result(value)
            members.append({"kind": kind, "result": payload})
        return Response(id=request.id, kind=RESULTS, result=members)

    async def _op_execute_batch(
        self, request: Request, connection: _Connection
    ) -> Response:
        # Legacy homogeneous-batch op: kept wire-compatible (an untagged
        # list of relation payloads) for clients predating run_batch.
        # Served through the generic path directly — the deprecated
        # ``execute_batch`` facade shim is for external callers only.
        database = self._database(request)
        relations = await self._service.run_batch(
            operations_of(OP_EXECUTE, request.queries or ()),
            database,
            client=connection.client,
            deadline=request.deadline,
        )
        return Response(
            id=request.id,
            kind=RELATIONS,
            result=[encode_relation(relation) for relation in relations],
        )

    async def _op_decide_batch(
        self, request: Request, connection: _Connection
    ) -> Response:
        database = self._database(request)
        decisions = await self._service.run_batch(
            operations_of(OP_DECIDE, request.queries or ()),
            database,
            client=connection.client,
            deadline=request.deadline,
        )
        return Response(
            id=request.id,
            kind=BOOLEANS,
            result=[bool(decision) for decision in decisions],
        )

    async def _op_ping(self, request: Request, connection: _Connection) -> Response:
        if request.frames is not None:
            # Frame negotiation: accept the intersection with what this
            # build speaks and switch the connection's send side over.
            accepted = negotiate_frames(request.frames)
            connection.binary = bool(accepted)
            return Response(
                id=request.id, kind=PONG, result={"frames": list(accepted)}
            )
        return Response(id=request.id, kind=PONG, result=None)

    async def _op_stats(self, request: Request, connection: _Connection) -> Response:
        stats = await self._service.stats()
        return Response(
            id=request.id,
            kind=STATS_RESULT,
            result=stats_payload(stats, transport=self._transport_stats()),
        )

    async def _op_cancel(self, request: Request, connection: _Connection) -> Response:
        # Cancellation is scoped to the requesting connection — one
        # client cannot reach into another's in-flight requests.
        self._cancel_requests += 1
        target = None
        if request.target is not None:
            target = connection.inflight.get(request.target)
        cancelled = False
        if target is not None and not target.done():
            cancelled = target.cancel("cancelled by client request")
        return Response(id=request.id, kind=CANCELLED, result=bool(cancelled))

    async def _op_register_database(
        self, request: Request, connection: _Connection
    ) -> Response:
        """Install (or replace) a named database without a restart.

        The fleet's workload-distribution op: the supervisor/router
        broadcast one ``register_database`` frame per worker, so a new
        tenant's data is servable fleet-wide while every process keeps
        running.  Registration is idempotent — re-registering a name
        replaces its database atomically (requests in flight keep the
        object they resolved; the dict swap is loop-thread-only).
        """
        assert request.database is not None  # validate() guarantees it
        database = decode_database(request.data)
        self._databases[request.database] = database
        return Response(
            id=request.id,
            kind=REGISTERED,
            result={
                "database": request.database,
                "relations": sorted(database.names()),
            },
        )

    def _transport_stats(self) -> Dict[str, Any]:
        """The transport-level counters for the ``stats`` payload."""
        return {
            "connections_total": self._connections_total,
            "connections_active": len(self._connections),
            "busy_rejections": self._busy_rejections,
            "idle_closed": self._idle_closed,
            "cancel_requests": self._cancel_requests,
            "max_connections": self._max_connections,
            "idle_timeout": self._idle_timeout,
        }

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("bound" if self._server else "idle")
        return (
            f"QueryServer({state}, databases={sorted(self._databases)}, "
            f"connections={len(self._connections)})"
        )


def stats_payload(
    stats: ServiceStats, *, transport: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """A JSON-able rendering of :class:`ServiceStats` for the wire."""
    counters = stats.service
    cache = stats.engine.cache
    payload: Dict[str, Any] = {
        "service": {
            "submitted": counters.submitted,
            "coalesced": counters.coalesced,
            "batched": counters.batched,
            "groups": counters.groups,
            "completed": counters.completed,
            "failed": counters.failed,
            "rejected": counters.rejected,
            "cancelled": counters.cancelled,
            "deadline_exceeded": counters.deadline_exceeded,
            "max_queue_depth": counters.max_queue_depth,
            "max_group": counters.max_group,
        },
        "clients": [
            {
                "client": client.client,
                "submitted": client.submitted,
                "coalesced": client.coalesced,
                "batched": client.batched,
                "completed": client.completed,
                "failed": client.failed,
                "rejected": client.rejected,
                "p50_seconds": client.p50_seconds,
                "p95_seconds": client.p95_seconds,
            }
            for client in stats.clients
        ],
        "engine": {
            "executions": stats.engine.executions,
            "total_seconds": stats.engine.total_seconds,
            "replans": stats.engine.replans,
            "cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": cache.evictions,
                "size": cache.size,
                "capacity": cache.capacity,
            },
            "shapes": [
                {
                    "shape": shape.shape,
                    "evaluator": shape.evaluator,
                    "structural_class": shape.structural_class,
                    "executions": shape.executions,
                    "total_seconds": shape.total_seconds,
                    "mean_seconds": shape.mean_seconds,
                    "p95_seconds": shape.p95_seconds,
                    "replans": shape.replans,
                }
                for shape in stats.engine.shapes
            ],
        },
    }
    if transport is not None:
        payload["transport"] = transport
    return payload


# ----------------------------------------------------------------------
# Executable entry point (the subprocess the cross-process tests spawn)
# ----------------------------------------------------------------------


def _parse_database_arg(value: str) -> Tuple[str, str]:
    name, separator, path = value.partition("=")
    if not separator or not name or not path:
        raise argparse.ArgumentTypeError(f"expected NAME=PATH.json, got {value!r}")
    return (name, path)


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 binds a free port (printed on READY)"
    )
    parser.add_argument(
        "--database",
        action="append",
        type=_parse_database_arg,
        required=True,
        metavar="NAME=PATH.json",
        help="expose the database at PATH.json under NAME (repeatable)",
    )
    parser.add_argument("--batch-window", type=float, default=None)
    parser.add_argument("--batch-limit", type=int, default=None)
    parser.add_argument("--max-pending", type=int, default=None)
    parser.add_argument("--dispatchers", type=int, default=None)
    parser.add_argument(
        "--per-client-pending",
        type=int,
        default=None,
        help="admitted-but-unfinished budget per connection (reject beyond)",
    )
    parser.add_argument(
        "--max-connections",
        type=int,
        default=None,
        help="reject connections past this count with server_busy",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        help="close connections silent for this many seconds",
    )
    return parser


def _load_databases(pairs: Sequence[Tuple[str, str]]) -> Dict[str, Database]:
    """Load every ``NAME=PATH.json`` pair, failing with a one-line error.

    A missing or unparsable database file must exit nonzero with a clear
    single-line message on stderr — never a raw traceback: the fleet
    supervisor reads exactly that line to distinguish "this worker can
    never start" (a config problem, breaker food) from a transient crash.
    """
    databases: Dict[str, Database] = {}
    for name, path in pairs:
        try:
            databases[name] = load_database_json(path)
        except (OSError, ValueError, ReproError) as exc:
            # ValueError covers json.JSONDecodeError; ReproError covers
            # SchemaError documents (e.g. a JSON file missing 'relations').
            raise SystemExit(
                f"QUERYSERVER ERROR: cannot load database {name!r} from "
                f"{path}: {exc}"
            ) from exc
    return databases


async def _serve(args: argparse.Namespace, databases: Dict[str, Database]) -> int:
    service_kwargs: Dict[str, Any] = {}
    if args.batch_window is not None:
        service_kwargs["batch_window"] = args.batch_window
    if args.batch_limit is not None:
        service_kwargs["batch_limit"] = args.batch_limit
    if args.max_pending is not None:
        service_kwargs["max_pending"] = args.max_pending
    if args.dispatchers is not None:
        service_kwargs["dispatchers"] = args.dispatchers
    if args.per_client_pending is not None:
        service_kwargs["max_pending_per_client"] = args.per_client_pending
    server_kwargs: Dict[str, Any] = {}
    if args.max_connections is not None:
        server_kwargs["max_connections"] = args.max_connections
    if args.idle_timeout is not None:
        server_kwargs["idle_timeout"] = args.idle_timeout
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass
    async with QueryServer(
        databases, host=args.host, port=args.port, **server_kwargs, **service_kwargs
    ) as server:
        host, port = server.address
        print(f"QUERYSERVER READY host={host} port={port}", flush=True)
        await stop.wait()
        print("QUERYSERVER DRAINING", flush=True)
    print("QUERYSERVER CLOSED", flush=True)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_arg_parser().parse_args(list(argv) if argv is not None else None)
    try:
        databases = _load_databases(args.database)
    except SystemExit as exc:
        print(exc, file=sys.stderr, flush=True)
        return 2
    return asyncio.run(_serve(args, databases))


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())


__all__ = ["QueryServer", "build_arg_parser", "main", "stats_payload"]
