"""Line-delimited JSON framing and the wire error taxonomy.

Framing is the simplest thing that composes with asyncio streams: one
message per line, UTF-8 JSON with canonical key order and no insignificant
whitespace, terminated by ``\\n``.  JSON escapes embedded newlines, so a
message can never split a frame, and :data:`MAX_LINE_BYTES` bounds what a
peer can make the reader buffer.

``encode``/``decode`` are exact inverses on valid messages —
``decode(encode(m)) == m`` and ``encode(decode(encode(m))) ==
encode(m)`` byte-for-byte (the Hypothesis suite pins both).  ``decode``
rejects garbage with a typed :class:`~.messages.ProtocolError` whose
``code`` lands verbatim in the error response, never a raw traceback.

The **error taxonomy** maps every failure a request can hit to a stable
code:

=====================  ==============================================
code                   raised by
=====================  ==============================================
``not_json``           the line is not a JSON object
``unsupported_version``  the message's ``v`` is not ours
``bad_request``        malformed message shape, unknown op/fields
``frame_too_large``    a line exceeded :data:`MAX_LINE_BYTES`
``parse_error``        ``parse_query`` rejected the query text
``unknown_database``   the request named a database the server lacks
``invalid_query``      the query object is malformed (unsafe head, ...)
``invalid_operation``  a generic operation is malformed (unknown kind,
                       options the kind does not take, bad option values)
``schema_error``       the query used relations/arity the data lacks
``plan_error``         structural requirements failed (acyclicity, ...)
``backpressure``       per-client admission budget exhausted
``server_busy``        the server's connection limit is reached
``deadline_exceeded``  the request's ``deadline`` expired mid-execution
``cancelled``          the request was torn down (explicit ``cancel``
                       message, client disconnect, idle timeout)
``shutting_down``      the server is draining
``unrepresentable``    a result value is not JSON-representable
``query_error``        any other library failure (``ReproError`` catch-all)
``internal_error``     anything unforeseen (message only, no traceback)
=====================  ==============================================

The transient codes — ``server_busy``, ``backpressure``,
``shutting_down`` — are exactly the retry set of
:data:`repro.resilience.DEFAULT_RETRY_CODES`; everything else fails the
same way on a second attempt and is not retried.
"""

from __future__ import annotations

import json
from typing import Any, Optional, Union

from ..errors import (
    InconsistentConstraintsError,
    NotAcyclicError,
    ParseError,
    QueryError,
    ReproError,
    RequestRejectedError,
    SchemaError,
)
from .messages import (
    ERROR,
    PROTOCOL_VERSION,
    ErrorInfo,
    ProtocolError,
    Request,
    Response,
)

#: Hard bound on one frame — covers large batch responses with room to
#: spare while keeping a hostile peer from ballooning the read buffer.
MAX_LINE_BYTES = 16 * 1024 * 1024

Message = Union[Request, Response]


def encode(message: Message) -> bytes:
    """One canonical ``\\n``-terminated JSON line for *message*."""
    payload = message.to_wire()
    text = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    )
    data = text.encode("utf-8") + b"\n"
    if len(data) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"encoded message is {len(data)} bytes; the frame bound is "
            f"{MAX_LINE_BYTES}",
            code="frame_too_large",
            bytes=len(data),
        )
    return data


def decode(line: Union[bytes, str]) -> Message:
    """Parse one frame back into a :class:`Request` or :class:`Response`.

    Dispatch is structural: requests carry ``op``, responses carry
    ``ok``.  Anything else — non-JSON, non-object, wrong version,
    unknown shape — raises a typed :class:`ProtocolError`.
    """
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(
                f"frame of {len(line)} bytes exceeds the {MAX_LINE_BYTES} bound",
                code="frame_too_large",
                bytes=len(line),
            )
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(
                f"frame is not UTF-8: {error}", code="not_json"
            ) from error
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(
            f"frame is not JSON: {error.msg}", code="not_json", position=error.pos
        ) from error
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(payload).__name__}",
            code="not_json",
        )
    return decode_payload(payload)


def decode_payload(payload: dict) -> Message:
    """Version-check and dispatch an already-parsed message object.

    Shared by the JSON line framing above and the binary relation framing
    of :mod:`.frames`, so both paths validate identically.
    """
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} (this build speaks "
            f"{PROTOCOL_VERSION})",
            code="unsupported_version",
            version=version if isinstance(version, (int, str)) else str(version),
        )
    if "op" in payload:
        return Request.from_wire(payload)
    if "ok" in payload:
        return Response.from_wire(payload)
    raise ProtocolError("frame is neither a request ('op') nor a response ('ok')")


def request_id_of(line: Union[bytes, str]) -> Optional[int]:
    """Best-effort request id from a possibly invalid frame.

    Lets the server attribute a structured error to the request that
    caused it even when the frame fails full validation; ``None`` when
    the id is unrecoverable.
    """
    try:
        if isinstance(line, bytes):
            line = line.decode("utf-8")
        payload = json.loads(line)
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    candidate = payload.get("id")
    if isinstance(candidate, bool) or not isinstance(candidate, int):
        return None
    return candidate if candidate >= 0 else None


def error_info(exc: BaseException) -> ErrorInfo:
    """The taxonomy: one stable code per failure class, never a traceback."""
    if isinstance(exc, RequestRejectedError):
        # Covers ProtocolError and ServiceOverloadedError too — the code
        # travels on the exception itself.
        return ErrorInfo(code=exc.code, message=str(exc), detail=_jsonable(exc.detail))
    if isinstance(exc, ParseError):
        return ErrorInfo(
            code="parse_error",
            message=str(exc),
            detail={
                "position": exc.position,
                "line": exc.line,
                "column": exc.column,
            },
        )
    if isinstance(exc, (NotAcyclicError, InconsistentConstraintsError)):
        return ErrorInfo(code="plan_error", message=str(exc))
    if isinstance(exc, QueryError):
        return ErrorInfo(code="invalid_query", message=str(exc))
    if isinstance(exc, SchemaError):
        return ErrorInfo(code="schema_error", message=str(exc))
    if isinstance(exc, ReproError):
        return ErrorInfo(code="query_error", message=str(exc))
    return ErrorInfo(
        code="internal_error",
        message=str(exc) or type(exc).__name__,
        detail={"type": type(exc).__name__},
    )


def error_response(request_id: Optional[int], exc: BaseException) -> Response:
    """A structured error response attributed to *request_id*."""
    return Response(id=request_id, kind=ERROR, error=error_info(exc))


def _jsonable(detail: Any) -> dict:
    """Clamp an error detail mapping to JSON scalars (defense in depth)."""
    out = {}
    for key, value in dict(detail).items():
        if isinstance(value, (str, int, float, bool, type(None))):
            out[str(key)] = value
        else:
            out[str(key)] = repr(value)
    return out


__all__ = [
    "MAX_LINE_BYTES",
    "Message",
    "decode",
    "decode_payload",
    "encode",
    "error_info",
    "error_response",
    "request_id_of",
]
