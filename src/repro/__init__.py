"""repro — reproduction of Papadimitriou & Yannakakis,
"On the Complexity of Database Queries" (PODS 1997 / JCSS 1999).

The public API re-exports the main entry points of each subsystem; see
README.md for a tour and DESIGN.md for the paper-to-module map.
"""

from .errors import (
    ArityError,
    BackendError,
    BackendUnavailableError,
    CancelledRequestError,
    ConnectionLostError,
    DeadlineExceededError,
    FleetDrainedError,
    InconsistentConstraintsError,
    NotAcyclicError,
    ParseError,
    QueryError,
    ReductionError,
    ReproError,
    RequestTimeoutError,
    RetryExhaustedError,
    SchemaError,
    ServerBusyError,
    SqlCompilationError,
    WorkerUnavailableError,
)
from .relational import Database, Relation
from .query import (
    Atom,
    Comparison,
    ConjunctiveQuery,
    DatalogProgram,
    FirstOrderQuery,
    Inequality,
    PositiveQuery,
    Rule,
    parse_program,
    parse_query,
)
from .evaluation import (
    CountingYannakakisEvaluator,
    DatalogEvaluator,
    FirstOrderEvaluator,
    NaiveEvaluator,
    PositiveEvaluator,
    TreewidthEvaluator,
    YannakakisEvaluator,
)
from .engine import QueryEngine, QueryPlan
from .backends import DuckDbBackend, SqlBackend, SqliteBackend
from .operations import Operation
from .parallel import ParallelYannakakisEvaluator, ShardedRelation, WorkerPool
from .resilience import CancelToken, FaultPlan, RetryPolicy
from .service import QueryService, ServiceStats
from .protocol import AsyncQueryClient, QueryClient, QueryServer
from .fleet import FleetRouter, FleetSupervisor

__version__ = "1.0.0"

__all__ = [
    "ArityError",
    "AsyncQueryClient",
    "Atom",
    "BackendError",
    "BackendUnavailableError",
    "CancelToken",
    "CancelledRequestError",
    "Comparison",
    "ConjunctiveQuery",
    "ConnectionLostError",
    "CountingYannakakisEvaluator",
    "Database",
    "DatalogEvaluator",
    "DatalogProgram",
    "DeadlineExceededError",
    "DuckDbBackend",
    "FaultPlan",
    "FleetDrainedError",
    "FleetRouter",
    "FleetSupervisor",
    "FirstOrderEvaluator",
    "FirstOrderQuery",
    "InconsistentConstraintsError",
    "Inequality",
    "NaiveEvaluator",
    "NotAcyclicError",
    "Operation",
    "ParseError",
    "ParallelYannakakisEvaluator",
    "PositiveEvaluator",
    "PositiveQuery",
    "QueryClient",
    "QueryEngine",
    "QueryError",
    "QueryPlan",
    "QueryServer",
    "QueryService",
    "RequestTimeoutError",
    "RetryExhaustedError",
    "RetryPolicy",
    "ServerBusyError",
    "ServiceStats",
    "ReductionError",
    "Relation",
    "ReproError",
    "Rule",
    "SchemaError",
    "ShardedRelation",
    "SqlBackend",
    "SqlCompilationError",
    "SqliteBackend",
    "TreewidthEvaluator",
    "WorkerPool",
    "WorkerUnavailableError",
    "YannakakisEvaluator",
    "parse_program",
    "parse_query",
    "__version__",
]
