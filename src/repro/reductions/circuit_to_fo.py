"""Theorem 1(3): monotone weighted circuit SAT ≤ first-order evaluation.

The reduction (both parameters):

* normalize the monotone circuit into strict OR/AND alternation with the
  output an OR gate at level 2t (:func:`repro.circuits.normalize.level_alternate`);
* the database has one constant per gate and a single binary relation
      C = {(a, b) : gate b is an input of gate a} ∪ {(c, c) : c input gate};
* define, for the even (OR) levels,

      θ_0(x)   = C(x, x_1) ∨ ... ∨ C(x, x_k)
      θ_2i(x)  = ∃y [ C(x, y) ∧ ∀z ( ¬C(y, z) ∨ θ_{2i−2}(z) ) ]

  and take  Q = ∃x_1 ... ∃x_k θ_{2t}(o)  with o the output-gate constant.

The variables y and z are *reused* at every level, so the query has
exactly k + 2 variables and size O(t + k): W[P]-hardness for parameter v,
and (because monotone depth-t weighted circuit SAT is W[t]-complete for
even t) W[t]-hardness for every t for parameter q.  The schema is fixed
(one binary relation).

The alternating extension (AW[P], §4's closing discussion) lives in
:func:`alternating_circuit_to_fo`.
"""

from __future__ import annotations

from typing import List, Tuple

from ..circuits.circuit import Circuit, INPUT
from ..circuits.normalize import level_alternate
from ..errors import ReductionError
from ..parametric.problems.alternating import AlternatingWeightedCircuitInstance, MONOTONE_AW_P
from ..parametric.problems.weighted_sat_problems import (
    MONOTONE_WEIGHTED_CIRCUIT_SAT,
    WeightedCircuitInstance,
)
from ..query.atoms import Atom
from ..query.first_order import (
    And,
    AtomFormula,
    Exists,
    FirstOrderQuery,
    Forall,
    Formula,
    Not,
    Or,
)
from ..query.terms import Constant, Term, Variable
from ..relational.database import Database
from ..relational.relation import Relation
from .problem_base import ParametricReduction
from .query_problems import (
    FO_EVALUATION_Q,
    FO_EVALUATION_V,
    QueryEvaluationInstance,
)


def wiring_database(circuit: Circuit) -> Database:
    """The C relation: wiring pairs plus self-loops on input gates."""
    rows: List[Tuple[str, str]] = []
    for gate in circuit.gates():
        if gate.kind == INPUT:
            rows.append((gate.gate_id, gate.gate_id))
        for source in gate.inputs:
            rows.append((gate.gate_id, source))
    domain = [g.gate_id for g in circuit.gates()]
    return Database({"C": Relation.from_rows(("C.0", "C.1"), rows)}, domain=domain)


def theta(level: int, argument: Term, k: int) -> Formula:
    """The level formula θ_level(argument) with existential x_1..x_k free.

    *level* must be even; y and z are reused at every recursion step,
    giving the k + 2 variable bound.
    """
    if level % 2 != 0:
        raise ReductionError("theta is defined for even (OR) levels")
    if level == 0:
        return Or(
            AtomFormula(Atom("C", (argument, Variable(f"x{j}"))))
            for j in range(1, k + 1)
        ) if k > 1 else AtomFormula(Atom("C", (argument, Variable("x1"))))
    y = Variable("y")
    z = Variable("z")
    inner = theta(level - 2, z, k)
    return Exists(
        y,
        And(
            (
                AtomFormula(Atom("C", (argument, y))),
                Forall(z, Or((Not(AtomFormula(Atom("C", (y, z)))), inner))),
            )
        ),
    )


def circuit_to_fo_query(circuit: Circuit, k: int) -> Tuple[FirstOrderQuery, Database]:
    """Build (Q, d) for the monotone circuit and weight k.

    Raises :class:`ReductionError` for non-monotone circuits, k < 1, or
    k exceeding the number of inputs (the monotone padding argument needs
    k ≤ #inputs).
    """
    if k < 1:
        raise ReductionError("the construction needs k >= 1")
    if k > circuit.num_inputs:
        raise ReductionError(
            f"k={k} exceeds the circuit's {circuit.num_inputs} inputs"
        )
    leveled, t = level_alternate(circuit)
    body = theta(2 * t, Constant(leveled.output), k)
    formula: Formula = body
    for j in range(k, 0, -1):
        formula = Exists(Variable(f"x{j}"), formula)
    query = FirstOrderQuery((), formula, head_name="Q")
    return query, wiring_database(leveled)


def circuit_to_fo(instance: WeightedCircuitInstance) -> QueryEvaluationInstance:
    """Transform a monotone weighted-circuit instance into (Q, d, ())."""
    if not instance.circuit.is_monotone():
        raise ReductionError("the reduction requires a monotone circuit")
    query, database = circuit_to_fo_query(instance.circuit, instance.k)
    return QueryEvaluationInstance(query=query, database=database, candidate=())


CIRCUIT_TO_FO_V = ParametricReduction(
    name="monotone-weighted-circuit-sat->first-order[v]",
    source=MONOTONE_WEIGHTED_CIRCUIT_SAT,
    target=FO_EVALUATION_V,
    transform=circuit_to_fo,
    parameter_bound=lambda k: k + 2,
    notes="Theorem 1(3): W[P]-hardness for parameter v; fixed schema",
)


def fo_query_size_bound(k: int, t: int) -> int:
    """q = O(t + k): the exact structural size of the θ_2t query."""
    # θ_0: k atoms of size 3 inside an OR node (+1), wrapped per level by
    # ∃y(2) + ∧(1) + atom(3) + ∀z(2) + ∨(1) + ¬(1) + atom(3) = 13.
    return (3 * k + 1) + 13 * t + 2 * k + 1


def make_depth_t_reduction(t: int) -> ParametricReduction:
    """The parameter-q reduction from depth-t monotone weighted circuit SAT.

    For each even t, monotone depth-t weighted circuit satisfiability is
    W[t]-complete; the same transformation then shows W[t]-hardness of
    first-order evaluation under parameter q (the query size depends only
    on t and k).
    """
    from ..parametric.problems.weighted_sat_problems import (
        depth_t_weighted_circuit_sat,
    )

    def transform(instance: WeightedCircuitInstance) -> QueryEvaluationInstance:
        if instance.circuit.depth() > t:
            raise ReductionError(
                f"instance depth {instance.circuit.depth()} exceeds t={t}"
            )
        return circuit_to_fo(instance)

    return ParametricReduction(
        name=f"monotone-depth-{t}-weighted-circuit-sat->first-order[q]",
        source=depth_t_weighted_circuit_sat(t),
        target=FO_EVALUATION_Q,
        transform=transform,
        # Leveling at most doubles the depth, so the θ tower has ≤ t+1
        # levels and the query size is bounded in terms of k alone for
        # fixed t.
        parameter_bound=lambda k, _t=t: fo_query_size_bound(k, _t + 1),
        notes="Theorem 1(3): W[t]-hardness for parameter q, all t",
    )


# ----------------------------------------------------------------------
# AW[P] extension (§4 discussion)
# ----------------------------------------------------------------------


def alternating_circuit_to_fo(
    instance: AlternatingWeightedCircuitInstance,
) -> QueryEvaluationInstance:
    """The adapted reduction showing AW[P]-hardness for parameter v.

    Variables x_{i,j} (block i, 1 ≤ j ≤ k_i) get the block's quantifier.
    The database gains P = {(a, c*_i) : a ∈ V_i} with c*_i a representative
    input of block i; ψ_i states that block i's variables map to distinct
    members of V_i (distinctness of input gates a ≠ b is ¬C(a, b), using
    the input self-loops).  The body is

        [θ_2t(o) ∧ ⋀_{i : Q_i = ∃} ψ_i]  ∨  ¬[⋀_{i : Q_i = ∀} ψ_i].
    """
    circuit = instance.circuit
    if not circuit.is_monotone():
        raise ReductionError("the reduction requires a monotone circuit")
    for block, weight in zip(instance.blocks, instance.weights):
        if weight < 1 or weight > len(block):
            raise ReductionError("each block weight must satisfy 1 <= k_i <= |V_i|")
        if not block:
            raise ReductionError("blocks must be nonempty")

    leveled, t = level_alternate(circuit)
    database = wiring_database(leveled)
    representatives = [block[0] for block in instance.blocks]
    p_rows = [
        (member, representatives[i])
        for i, block in enumerate(instance.blocks)
        for member in block
    ]
    database = database.with_relation("P", Relation.from_rows(("P.0", "P.1"), p_rows))

    block_vars: List[List[Variable]] = []
    flat_names: List[Variable] = []
    for i, weight in enumerate(instance.weights, start=1):
        row = [Variable(f"x{i}_{j}") for j in range(1, weight + 1)]
        block_vars.append(row)
        flat_names.extend(row)

    def psi(i: int) -> Formula:
        members = block_vars[i]
        rep = Constant(representatives[i])
        parts: List[Formula] = []
        for j, variable in enumerate(members):
            parts.append(AtomFormula(Atom("P", (variable, rep))))
            for l, other in enumerate(members):
                if l != j:
                    parts.append(Not(AtomFormula(Atom("C", (variable, other)))))
        return parts[0] if len(parts) == 1 else And(parts)

    # θ over the flat variable list: θ_0 tests membership among all x_{i,j}.
    body0 = theta_flat(2 * t, Constant(leveled.output), flat_names)
    existential_blocks = [i for i in range(len(instance.blocks)) if i % 2 == 0]
    universal_blocks = [i for i in range(len(instance.blocks)) if i % 2 == 1]

    positive_part: Formula = body0
    if existential_blocks:
        positive_part = And(
            [body0] + [psi(i) for i in existential_blocks]
        )
    if universal_blocks:
        guard = And([psi(i) for i in universal_blocks]) if len(universal_blocks) > 1 else psi(universal_blocks[0])
        matrix: Formula = Or((positive_part, Not(guard)))
    else:
        matrix = positive_part

    formula: Formula = matrix
    for i in range(len(instance.blocks) - 1, -1, -1):
        quantifier = Exists if i % 2 == 0 else Forall
        for variable in reversed(block_vars[i]):
            formula = quantifier(variable, formula)
    query = FirstOrderQuery((), formula, head_name="Q")
    return QueryEvaluationInstance(query=query, database=database, candidate=())


def theta_flat(level: int, argument: Term, variables: List[Variable]) -> Formula:
    """θ with an explicit free-variable list (the alternating variant)."""
    if level == 0:
        parts = [
            AtomFormula(Atom("C", (argument, v))) for v in variables
        ]
        return parts[0] if len(parts) == 1 else Or(parts)
    y = Variable("y")
    z = Variable("z")
    inner = theta_flat(level - 2, z, variables)
    return Exists(
        y,
        And(
            (
                AtomFormula(Atom("C", (argument, y))),
                Forall(z, Or((Not(AtomFormula(Atom("C", (y, z)))), inner))),
            )
        ),
    )


ALTERNATING_CIRCUIT_TO_FO = ParametricReduction(
    name="alternating-weighted-circuit-sat->first-order[v]",
    source=MONOTONE_AW_P,
    target=FO_EVALUATION_V,
    transform=alternating_circuit_to_fo,
    parameter_bound=lambda k: k + 2,
    notes="§4: AW[P]-hardness of first-order evaluation under parameter v",
)
