"""§5: acyclic queries with ≠ have NP-complete *combined* complexity.

"the Hamiltonian path problem can be easily reduced to it.  Given a graph
(V, E), let Q be the query  G ← E(x_1,x_2), E(x_2,x_3), ..., E(x_{n−1},x_n),
x_1 ≠ x_2, x_1 ≠ x_3, ..., x_{n−1} ≠ x_n.  The goal proposition G is true
iff the graph is Hamiltonian.  Here the query is as big as the database."

The relational atoms form a path, so the query hypergraph is acyclic; all
the hardness hides in the pairwise ≠ atoms, whose count grows with n —
exactly the regime where Theorem 2's f(k) factor blows up.  The benchmark
uses this to show the combined-complexity cliff.
"""

from __future__ import annotations

from itertools import combinations
from typing import Tuple

from ..errors import ReductionError
from ..query.atoms import Atom, Inequality
from ..query.conjunctive import ConjunctiveQuery
from ..query.terms import Variable
from ..relational.database import Database
from ..relational.relation import Relation
from ..workloads.graphs import Graph


def hamiltonian_path_query(n: int) -> ConjunctiveQuery:
    """The path query with all-pairs ≠ over n variables (n ≥ 2)."""
    if n < 2:
        raise ReductionError("Hamiltonian path query needs n >= 2 nodes")
    variables = [Variable(f"x{i}") for i in range(1, n + 1)]
    atoms = [
        Atom("E", (variables[i], variables[i + 1])) for i in range(n - 1)
    ]
    inequalities = [
        Inequality(a, b) for a, b in combinations(variables, 2)
    ]
    return ConjunctiveQuery((), atoms, inequalities, head_name="G")


def hamiltonian_to_query_instance(
    graph: Graph,
) -> Tuple[ConjunctiveQuery, Database]:
    """(Q, d) such that Q(d) ≠ ∅ iff *graph* has a Hamiltonian path."""
    if graph.num_nodes < 2:
        raise ReductionError("need at least 2 nodes")
    rows = list(graph.directed_edges())
    database = Database(
        {"E": Relation.from_rows(("E.0", "E.1"), rows)}, domain=graph.nodes
    )
    return hamiltonian_path_query(graph.num_nodes), database


def has_hamiltonian_path(graph: Graph) -> bool:
    """Ground truth via Held–Karp dynamic programming, O(2^n · n^2)."""
    nodes = graph.nodes
    n = len(nodes)
    if n == 0:
        return False
    if n == 1:
        return True
    index = {node: i for i, node in enumerate(nodes)}
    # reachable[mask] = set of end-node indices of paths covering `mask`.
    reachable = [set() for _ in range(1 << n)]
    for i in range(n):
        reachable[1 << i].add(i)
    for mask in range(1 << n):
        ends = reachable[mask]
        if not ends:
            continue
        for end in list(ends):
            for neighbour in graph.neighbours(nodes[end]):
                j = index[neighbour]
                if mask & (1 << j):
                    continue
                reachable[mask | (1 << j)].add(j)
    return bool(reachable[(1 << n) - 1])
