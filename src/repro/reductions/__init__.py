"""Executable forms of every reduction in the paper.

Theorem 1 (classification of conjunctive / positive / first-order):

* :data:`CLIQUE_TO_CQ_Q`, :data:`CLIQUE_TO_CQ_V` — W[1]-hardness;
* :data:`CQ_TO_WEIGHTED_2CNF` — membership in W[1], parameter q;
* :data:`CQ_V_TO_CQ_Q` — the variable-set grouping for parameter v;
* :data:`POSITIVE_TO_UNION_OF_CQS`, :data:`POSITIVE_TO_CLIQUE` — positive
  queries in W[1] for parameter q (footnote 2 transformation included);
* :data:`WSAT_TO_POSITIVE` — W[SAT]-hardness for parameter v;
* :data:`PRENEX_POSITIVE_TO_WSAT` — the prenex converse;
* :data:`CIRCUIT_TO_FO_V`, :func:`make_depth_t_reduction`,
  :data:`ALTERNATING_CIRCUIT_TO_FO` — first-order hardness.

§4 Datalog: :func:`evaluate_via_cq_oracle` (+ :func:`w1_cq_oracle`).

§5: :func:`hamiltonian_to_query_instance` (NP-hardness of combined
complexity with ≠) and Theorem 3's
:data:`CLIQUE_TO_COMPARISONS_Q` / :data:`CLIQUE_TO_COMPARISONS_V`.
"""

from .circuit_to_fo import (
    ALTERNATING_CIRCUIT_TO_FO,
    CIRCUIT_TO_FO_V,
    alternating_circuit_to_fo,
    circuit_to_fo,
    circuit_to_fo_query,
    make_depth_t_reduction,
    theta,
    wiring_database,
)
from .clique_to_acyclic_comparisons import (
    CLIQUE_TO_COMPARISONS_Q,
    CLIQUE_TO_COMPARISONS_V,
    clique_to_comparisons,
    comparison_database,
    comparison_query,
    encode,
)
from .clique_to_cq import (
    CLIQUE_TO_CQ_Q,
    CLIQUE_TO_CQ_V,
    clique_query,
    clique_to_cq,
    graph_database,
)
from .cq_to_weighted_2cnf import (
    CQ_TO_WEIGHTED_2CNF,
    CQToCNFResult,
    cq_to_weighted_2cnf,
)
from .datalog_fixed_arity import (
    OracleStats,
    evaluate_via_cq_oracle,
    naive_cq_oracle,
    w1_cq_oracle,
)
from .hamiltonian_to_acyclic_neq import (
    hamiltonian_path_query,
    hamiltonian_to_query_instance,
    has_hamiltonian_path,
)
from .k_path_to_acyclic_neq import (
    K_PATH_TO_ACYCLIC_NEQ,
    k_path_query,
    k_path_to_query_instance,
)
from .wsat_to_neq_formula import (
    NEQ_FORMULA_EVALUATION_V,
    NeqFormulaInstance,
    WSAT_TO_NEQ_FORMULA,
    wsat_to_neq_formula,
)
from .parameter_v_reduction import CQ_V_TO_CQ_Q, grouped_size_bound
from .positive_to_cqs import (
    POSITIVE_TO_CLIQUE,
    POSITIVE_TO_UNION_OF_CQS,
    cq_to_compatibility_graph,
    positive_to_clique,
)
from .prenex_fo_awsat import (
    AWSAT_TO_PRENEX_FO,
    PRENEX_FO_TO_AWSAT,
    awsat_to_prenex_fo,
    prenex_fo_to_awsat,
)
from .prenex_positive_to_wsat import (
    PRENEX_POSITIVE_TO_WSAT,
    prenex_positive_to_wsat,
)
from .query_problems import (
    ACYCLIC_COMPARISON_EVALUATION_Q,
    ACYCLIC_COMPARISON_EVALUATION_V,
    ACYCLIC_NEQ_EVALUATION_Q,
    CQ_EVALUATION_Q,
    CQ_EVALUATION_V,
    FO_EVALUATION_Q,
    FO_EVALUATION_V,
    POSITIVE_EVALUATION_Q,
    POSITIVE_EVALUATION_V,
    QueryEvaluationInstance,
)
from .wsat_to_positive import (
    WSAT_TO_POSITIVE,
    eq_neq_database,
    wsat_to_positive,
    wsat_to_positive_query,
)

__all__ = [
    "ACYCLIC_COMPARISON_EVALUATION_Q",
    "ACYCLIC_COMPARISON_EVALUATION_V",
    "ACYCLIC_NEQ_EVALUATION_Q",
    "ALTERNATING_CIRCUIT_TO_FO",
    "AWSAT_TO_PRENEX_FO",
    "CIRCUIT_TO_FO_V",
    "PRENEX_FO_TO_AWSAT",
    "CLIQUE_TO_COMPARISONS_Q",
    "CLIQUE_TO_COMPARISONS_V",
    "CLIQUE_TO_CQ_Q",
    "CLIQUE_TO_CQ_V",
    "CQToCNFResult",
    "CQ_EVALUATION_Q",
    "CQ_EVALUATION_V",
    "CQ_TO_WEIGHTED_2CNF",
    "CQ_V_TO_CQ_Q",
    "FO_EVALUATION_Q",
    "FO_EVALUATION_V",
    "K_PATH_TO_ACYCLIC_NEQ",
    "NEQ_FORMULA_EVALUATION_V",
    "NeqFormulaInstance",
    "OracleStats",
    "POSITIVE_EVALUATION_Q",
    "POSITIVE_EVALUATION_V",
    "POSITIVE_TO_CLIQUE",
    "POSITIVE_TO_UNION_OF_CQS",
    "PRENEX_POSITIVE_TO_WSAT",
    "QueryEvaluationInstance",
    "WSAT_TO_NEQ_FORMULA",
    "WSAT_TO_POSITIVE",
    "alternating_circuit_to_fo",
    "awsat_to_prenex_fo",
    "circuit_to_fo",
    "prenex_fo_to_awsat",
    "circuit_to_fo_query",
    "clique_query",
    "clique_to_comparisons",
    "clique_to_cq",
    "comparison_database",
    "comparison_query",
    "cq_to_compatibility_graph",
    "cq_to_weighted_2cnf",
    "encode",
    "eq_neq_database",
    "evaluate_via_cq_oracle",
    "graph_database",
    "grouped_size_bound",
    "hamiltonian_path_query",
    "hamiltonian_to_query_instance",
    "has_hamiltonian_path",
    "k_path_query",
    "k_path_to_query_instance",
    "make_depth_t_reduction",
    "wsat_to_neq_formula",
    "naive_cq_oracle",
    "prenex_positive_to_wsat",
    "positive_to_clique",
    "theta",
    "w1_cq_oracle",
    "wiring_database",
    "wsat_to_positive",
    "wsat_to_positive_query",
]
