"""§5's closing hardness: disjunctive x ≠ c makes parameter v W[SAT]-complete.

"if the inequalities between variables and constants are combined
arbitrarily using ∨ and ∧, then ... the problem is not anymore f.p.
tractable with respect to the parameter v; it becomes W[SAT]-complete.
The proof is as in Theorem 1 for the parameter v case of positive queries
in prenex normal form (replacing in the hardness proof every equality
y = i by a conjunction of inequalities ⋀_{c ∈ D−{i}} (y ≠ c))."

Instances of the target problem are (acyclic CQ, ∧/∨ formula of ≠ atoms,
database) triples; the ground-truth solver enumerates satisfying
instantiations of the relational part and filters by the formula, and the
fast solver is :class:`repro.inequalities.FormulaInequalityEvaluator` in
its parameter-q regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import List

from ..circuits.formulas import BoolAnd, BoolFormula, BoolNot, BoolOr, BoolVar, to_nnf
from ..errors import ReductionError
from ..evaluation.naive import NaiveEvaluator
from ..parametric.problems.weighted_sat_problems import (
    WEIGHTED_FORMULA_SAT,
    WeightedFormulaInstance,
)
from ..query.atoms import Atom, Inequality
from ..query.conjunctive import ConjunctiveQuery
from ..query.ineq_formula import IneqFormula, IneqLeaf, ineq_and, ineq_or
from ..query.terms import C, Variable
from ..relational.database import Database
from ..relational.relation import Relation
from .problem_base import ParametricProblem, ParametricReduction


@dataclass(frozen=True, eq=False)
class NeqFormulaInstance:
    """(acyclic CQ, inequality formula φ, database): is some instantiation
    of the relational atoms satisfying φ?"""

    query: ConjunctiveQuery
    formula: IneqFormula
    database: Database


def _solve_bruteforce(instance: NeqFormulaInstance) -> bool:
    engine = NaiveEvaluator()
    assignments = engine.satisfying_assignments(instance.query, instance.database)
    names = assignments.attributes
    for row in assignments.rows:
        valuation = {Variable(n): v for n, v in zip(names, row)}
        if instance.formula.evaluate(valuation):
            return True
    return False


NEQ_FORMULA_EVALUATION_V = ParametricProblem(
    name="acyclic-neq-formula-evaluation[v]",
    solver=_solve_bruteforce,
    parameter=lambda inst: inst.query.num_variables(),
    size=lambda inst: inst.database.size(),
    description="acyclic CQ + arbitrary ∧/∨ formula of != atoms, parameter v",
)


def wsat_to_neq_formula(instance: WeightedFormulaInstance) -> NeqFormulaInstance:
    """Weighted formula SAT → acyclic query with a disjunctive-≠ formula.

    Domain D = {1..n} (one constant per propositional variable); the query
    is Dom(y_1), ..., Dom(y_k) (trivially acyclic); the formula is

        ⋀_{i<j} (y_i ≠ y_j)  ∧  ψ̂

    with each positive occurrence of x_i replaced by
    ⋁_j ⋀_{c ∈ D−{i}} (y_j ≠ c)   (y_j = i, phrased with ≠ only)
    and each negative occurrence by ⋀_j (y_j ≠ i).
    """
    k = instance.k
    if k < 1:
        raise ReductionError("the construction needs k >= 1")
    names = sorted(instance.formula.variables())
    index_of = {name: i for i, name in enumerate(names, start=1)}
    n = len(names)
    domain = list(range(1, n + 1))
    ys = [Variable(f"y{j}") for j in range(1, k + 1)]

    def equals(y: Variable, i: int) -> IneqFormula:
        others = [c for c in domain if c != i]
        if not others:
            # Singleton domain: y = i holds vacuously; encode as a
            # tautology y ≠ 0 (0 is outside the domain).
            return IneqLeaf(Inequality(y, C(0)))
        return ineq_and(*[Inequality(y, C(c)) for c in others])

    def translate(node: BoolFormula) -> IneqFormula:
        if isinstance(node, BoolVar):
            i = index_of[node.name]
            return ineq_or(*[equals(y, i) for y in ys])
        if isinstance(node, BoolNot):
            inner = node.operand
            if not isinstance(inner, BoolVar):
                raise ReductionError("formula must be in NNF here")
            i = index_of[inner.name]
            return ineq_and(*[Inequality(y, C(i)) for y in ys])
        if isinstance(node, BoolAnd):
            return ineq_and(*[translate(c) for c in node.children])
        if isinstance(node, BoolOr):
            return ineq_or(*[translate(c) for c in node.children])
        raise ReductionError(f"unknown formula node: {node!r}")

    pieces: List[IneqFormula] = [
        IneqLeaf(Inequality(a, b)) for a, b in combinations(ys, 2)
    ]
    pieces.append(translate(to_nnf(instance.formula)))
    phi = pieces[0] if len(pieces) == 1 else ineq_and(*pieces)

    query = ConjunctiveQuery(
        (), [Atom("Dom", (y,)) for y in ys], head_name="Q"
    )
    database = Database(
        {"Dom": Relation.from_rows(("Dom.0",), [(c,) for c in domain])},
        domain=domain + [0],
    )
    return NeqFormulaInstance(query=query, formula=phi, database=database)


WSAT_TO_NEQ_FORMULA = ParametricReduction(
    name="weighted-formula-sat->acyclic-neq-formula[v]",
    source=WEIGHTED_FORMULA_SAT,
    target=NEQ_FORMULA_EVALUATION_V,
    transform=wsat_to_neq_formula,
    parameter_bound=lambda k: k,  # the query has exactly the k variables y_j
    notes="§5: W[SAT]-hardness of disjunctive x != c under parameter v",
)
