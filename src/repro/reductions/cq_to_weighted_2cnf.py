"""Theorem 1(1) upper bound: CQ decision ≤ weighted 2-CNF satisfiability.

For a conjunctive query Q (with the candidate tuple's constants already
substituted) and database d, introduce one Boolean variable z_{a,s} per
atom a and *consistent* tuple s of a's relation ("consistent": s matches
a's constants and repeated-variable equalities).  Clauses:

* at-most-one per atom: ¬z_{a,s} ∨ ¬z_{a,s'} for s ≠ s';
* conflicts: ¬z_{a,s} ∨ ¬z_{a',s'} whenever atoms a ≠ a' share a variable
  in columns j, j' but s[j] ≠ s'[j'].

With k = #atoms, the 2-CNF has a weight-k satisfying assignment iff Q(d)
is nonempty: weight k + at-most-one forces exactly one tuple per atom, and
the conflict clauses force a consistent instantiation.  All literals are
negative, so the resulting weighted SAT is an independent-set search —
:func:`repro.circuits.weighted_sat.negative_cnf_weighted_satisfiable`.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Any, Dict, List, Sequence, Tuple

from ..circuits.cnf import CNF, negative_pair
from ..errors import ReductionError
from ..query.atoms import Atom
from ..query.conjunctive import ConjunctiveQuery
from ..query.terms import Variable
from ..relational.database import Database
from ..relational.relation import Relation
from .problem_base import ParametricReduction
from .query_problems import (
    CQ_EVALUATION_Q,
    QueryEvaluationInstance,
)
from ..parametric.problems.weighted_sat_problems import (
    WEIGHTED_2CNF_SAT,
    WeightedCNFInstance,
)


@dataclass(frozen=True)
class CQToCNFResult:
    """The 2-CNF instance plus the decoding metadata.

    Attributes
    ----------
    instance:
        The weighted-CNF instance (k = number of atoms).
    groups:
        Variable groups, one per atom index (for the group-aware solver).
    bindings:
        ``z-variable name -> (atom index, database tuple)``, enough to
        decode a weight-k witness into a satisfying instantiation.
    atoms:
        The (constant-substituted) atoms the z variables refer to.
    """

    instance: WeightedCNFInstance
    groups: Dict[str, Tuple[str, ...]]
    bindings: Dict[str, Tuple[int, Tuple[Any, ...]]]
    atoms: Tuple[Atom, ...]

    def decode(self, witness) -> Dict[Variable, Any]:
        """Turn a weight-k witness into a variable instantiation."""
        valuation: Dict[Variable, Any] = {}
        for name in witness:
            atom_index, row = self.bindings[name]
            atom = self.atoms[atom_index]
            for term, value in zip(atom.terms, row):
                if isinstance(term, Variable):
                    valuation[term] = value
        return valuation


def _consistent_rows(atom: Atom, relation: Relation) -> List[Tuple[Any, ...]]:
    """Tuples of *relation* consistent with *atom* (constants + equalities)."""
    rows: List[Tuple[Any, ...]] = []
    for row in sorted(relation.rows, key=repr):
        ok = True
        seen: Dict[Variable, Any] = {}
        for term, value in zip(atom.terms, row):
            if isinstance(term, Variable):
                if term in seen and seen[term] != value:
                    ok = False
                    break
                seen[term] = value
            elif term.value != value:
                ok = False
                break
        if ok:
            rows.append(row)
    return rows


def cq_to_weighted_2cnf(
    query: ConjunctiveQuery,
    database: Database,
    candidate: Sequence[Any] = (),
) -> CQToCNFResult:
    """Build the weighted 2-CNF for the decision problem candidate ∈ Q(d)."""
    if query.inequalities or query.comparisons:
        raise ReductionError(
            "the 2-CNF construction covers purely relational queries"
        )
    decided = query.decision_instance(candidate)
    atoms = decided.atoms

    names: List[List[str]] = []
    bindings: Dict[str, Tuple[int, Tuple[Any, ...]]] = {}
    rows_of: List[List[Tuple[Any, ...]]] = []
    for index, atom in enumerate(atoms):
        rows = _consistent_rows(atom, database[atom.relation])
        rows_of.append(rows)
        atom_names = [f"z_{index}_{r}" for r in range(len(rows))]
        names.append(atom_names)
        for name, row in zip(atom_names, rows):
            bindings[name] = (index, row)

    clauses = []
    # At-most-one tuple per atom.
    for atom_names in names:
        for a, b in combinations(atom_names, 2):
            clauses.append(negative_pair(a, b))

    # Cross-atom conflicts on shared variables.
    for i, j in combinations(range(len(atoms)), 2):
        shared = set(atoms[i].variable_set()) & set(atoms[j].variable_set())
        if not shared:
            continue
        positions_i = {
            v: [p for p, t in enumerate(atoms[i].terms) if t == v] for v in shared
        }
        positions_j = {
            v: [p for p, t in enumerate(atoms[j].terms) if t == v] for v in shared
        }
        for ri, row_i in enumerate(rows_of[i]):
            for rj, row_j in enumerate(rows_of[j]):
                conflict = False
                for v in shared:
                    value_i = row_i[positions_i[v][0]]
                    value_j = row_j[positions_j[v][0]]
                    if value_i != value_j:
                        conflict = True
                        break
                if conflict:
                    clauses.append(negative_pair(names[i][ri], names[j][rj]))

    universe = [name for atom_names in names for name in atom_names]
    cnf = CNF(clauses, variables=universe)
    instance = WeightedCNFInstance(cnf=cnf, k=len(atoms))
    groups = {f"atom{i}": tuple(ns) for i, ns in enumerate(names)}
    return CQToCNFResult(
        instance=instance, groups=groups, bindings=bindings, atoms=atoms
    )


def _transform(instance: QueryEvaluationInstance) -> WeightedCNFInstance:
    return cq_to_weighted_2cnf(
        instance.query, instance.database, instance.candidate
    ).instance


CQ_TO_WEIGHTED_2CNF = ParametricReduction(
    name="conjunctive[q]->weighted-2cnf",
    source=CQ_EVALUATION_Q,
    target=WEIGHTED_2CNF_SAT,
    transform=_transform,
    parameter_bound=lambda q: q,  # k = #atoms ≤ q
    notes="Theorem 1(1) upper bound for parameter q; membership in W[1]",
)
