"""§5's special case: k-path as an acyclic conjunctive query with ≠.

The simple-path query on k vertices is

    P ← E(x_1, x_2), ..., E(x_{k−1}, x_k),  x_i ≠ x_j for all i < j

— an acyclic query whose parameter is k (fixed, unlike the Hamiltonian
case where k = n).  Adjacent pairs land in I2, the ≥ distance-2 pairs in
I1, so running the Theorem 2 evaluator on this query *is* the paper's
"color-coding combined with acyclic query processing" algorithm for
k-path.
"""

from __future__ import annotations

from itertools import combinations

from ..errors import ReductionError
from ..parametric.problems.k_path import K_PATH, KPathInstance
from ..query.atoms import Atom, Inequality
from ..query.conjunctive import ConjunctiveQuery
from ..query.terms import Variable
from ..relational.database import Database
from ..relational.relation import Relation
from .problem_base import ParametricReduction
from .query_problems import ACYCLIC_NEQ_EVALUATION_Q, QueryEvaluationInstance


def k_path_query(k: int) -> ConjunctiveQuery:
    """The simple-path query on k ≥ 2 vertices."""
    if k < 2:
        raise ReductionError("the k-path query needs k >= 2")
    variables = [Variable(f"x{i}") for i in range(1, k + 1)]
    atoms = [
        Atom("E", (variables[i], variables[i + 1])) for i in range(k - 1)
    ]
    inequalities = [Inequality(a, b) for a, b in combinations(variables, 2)]
    return ConjunctiveQuery((), atoms, inequalities, head_name="P")


def k_path_to_query_instance(instance: KPathInstance) -> QueryEvaluationInstance:
    """(G, k) → the query-evaluation instance over G's edge relation."""
    graph = instance.graph
    rows = list(graph.directed_edges())
    if not rows:
        # An edgeless database cannot be represented with an inferred-arity
        # relation; use an explicitly empty binary relation.
        relation = Relation.from_rows(("E.0", "E.1"), [])
    else:
        relation = Relation.from_rows(("E.0", "E.1"), rows)
    database = Database({"E": relation}, domain=graph.nodes)
    return QueryEvaluationInstance(
        query=k_path_query(instance.k), database=database, candidate=()
    )


def k_path_query_size(k: int) -> int:
    """q = 1 + 3(k−1) + 3·C(k,2): the parameter bound."""
    return 1 + 3 * (k - 1) + 3 * (k * (k - 1) // 2)


K_PATH_TO_ACYCLIC_NEQ = ParametricReduction(
    name="k-path->acyclic-neq[q]",
    source=K_PATH,
    target=ACYCLIC_NEQ_EVALUATION_Q,
    transform=k_path_to_query_instance,
    parameter_bound=k_path_query_size,
    notes="§5: k-path via the Theorem 2 machinery (color-coding + acyclic)",
)
