"""Theorem 1(1) lower bound: clique ≤ conjunctive-query evaluation.

"For any instance (G, k) of clique we construct a database consisting of
one binary relation G(·,·) (the graph).  The query for parameter k is
simply  P ← ⋀_{1≤i<j≤k} G(x_i, x_j)."

The query size is q = O(k²) and the number of variables is v = k, so the
same transformation is a reduction to both parametrizations; the schema is
fixed (one binary relation).
"""

from __future__ import annotations

from itertools import combinations

from ..errors import ReductionError
from ..parametric.problems.clique import CLIQUE, CliqueInstance
from ..query.atoms import Atom
from ..query.conjunctive import ConjunctiveQuery
from ..query.terms import Variable
from ..relational.database import Database
from ..relational.relation import Relation
from .problem_base import ParametricReduction
from .query_problems import (
    CQ_EVALUATION_Q,
    CQ_EVALUATION_V,
    QueryEvaluationInstance,
)


def clique_query(k: int) -> ConjunctiveQuery:
    """The Boolean query P ← ⋀_{1≤i<j≤k} G(x_i, x_j), for k ≥ 2."""
    if k < 2:
        raise ReductionError(
            "the clique query needs k >= 2 (k <= 1 is trivial and has no atoms)"
        )
    atoms = [
        Atom("G", (Variable(f"x{i}"), Variable(f"x{j}")))
        for i, j in combinations(range(1, k + 1), 2)
    ]
    return ConjunctiveQuery((), atoms, head_name="P")


def graph_database(instance: CliqueInstance) -> Database:
    """The database with the symmetric edge relation G (fixed schema)."""
    rows = list(instance.graph.directed_edges())
    relation = Relation.from_rows(("G.0", "G.1"), rows)
    return Database({"G": relation}, domain=instance.graph.nodes)


def clique_to_cq(instance: CliqueInstance) -> QueryEvaluationInstance:
    """Transform (G, k) into the equivalent query-evaluation instance."""
    return QueryEvaluationInstance(
        query=clique_query(instance.k),
        database=graph_database(instance),
        candidate=(),
    )


def clique_query_size(k: int) -> int:
    """Exact query-size measure of :func:`clique_query` — the bound g(k)."""
    return 1 + 3 * (k * (k - 1) // 2)


CLIQUE_TO_CQ_Q = ParametricReduction(
    name="clique->conjunctive[q]",
    source=CLIQUE,
    target=CQ_EVALUATION_Q,
    transform=clique_to_cq,
    parameter_bound=clique_query_size,
    notes="Theorem 1(1) lower bound, parameter q = O(k^2); fixed schema",
)

CLIQUE_TO_CQ_V = ParametricReduction(
    name="clique->conjunctive[v]",
    source=CLIQUE,
    target=CQ_EVALUATION_V,
    transform=clique_to_cq,
    parameter_bound=lambda k: k,
    notes="Theorem 1(1) lower bound, parameter v = k; fixed schema",
)
