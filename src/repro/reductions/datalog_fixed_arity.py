"""§4: fixed-arity Datalog is in W[1] — the oracle-counting evaluation.

"use the ordinary bottom-up evaluation algorithm ...  If the maximum arity
is r, then every IDB relation has at most n^r tuples and a fixpoint is
reached in n^r stages.  In each stage we need to compute for each rule a
conjunctive query with at most v variables; by Theorem 1 the decision
version of this problem is in W[1].  Thus, the evaluation of a Datalog
query with fixed arity relations reduces to a polynomial number of W[1]
problems."

:func:`evaluate_via_cq_oracle` is that argument as code: bottom-up
evaluation where every derivation question is posed as a Boolean
conjunctive-query decision (optionally routed through the CQ → weighted
2-CNF reduction, making the W[1] oracle explicit), with the oracle-call
count and the per-call parameter reported so the polynomial bound can be
asserted in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Callable, Dict, Tuple

from ..circuits.weighted_sat import negative_cnf_weighted_satisfiable
from ..evaluation.naive import NaiveEvaluator
from ..query.conjunctive import ConjunctiveQuery
from ..query.datalog import DatalogProgram
from ..relational.database import Database
from ..relational.relation import Relation
from ..relational.schema import RelationSchema
from .cq_to_weighted_2cnf import cq_to_weighted_2cnf

CQOracle = Callable[[ConjunctiveQuery, Database], bool]


@dataclass
class OracleStats:
    """Accounting for the W[1]-membership argument."""

    calls: int = 0
    max_parameter_q: int = 0
    max_parameter_v: int = 0
    stages: int = 0

    def record(self, query: ConjunctiveQuery) -> None:
        self.calls += 1
        self.max_parameter_q = max(self.max_parameter_q, query.query_size())
        self.max_parameter_v = max(self.max_parameter_v, query.num_variables())


def naive_cq_oracle(query: ConjunctiveQuery, database: Database) -> bool:
    """Direct Boolean CQ oracle (ground truth)."""
    return NaiveEvaluator().decide(query, database)


def w1_cq_oracle(query: ConjunctiveQuery, database: Database) -> bool:
    """The W[1]-membership route: CQ → weighted 2-CNF → solve."""
    result = cq_to_weighted_2cnf(query, database)
    witness = negative_cnf_weighted_satisfiable(
        result.instance.cnf, result.instance.k, groups=result.groups
    )
    return witness is not None


def evaluate_via_cq_oracle(
    program: DatalogProgram,
    database: Database,
    oracle: CQOracle = naive_cq_oracle,
) -> Tuple[Relation, OracleStats]:
    """Bottom-up Datalog evaluation that only consults a CQ decision oracle.

    Each stage enumerates, per rule, every candidate head tuple over the
    active domain (≤ n^r candidates for head arity r ≤ max arity) and asks
    the oracle whether the body — with the head variables bound to the
    candidate — holds in EDB ∪ current IDB.  The number of oracle calls is
    ≤ stages · rules · n^r ≤ rules · n^{2r}: polynomial for fixed arity,
    with each call's parameter bounded by the program's per-rule measures.
    """
    stats = OracleStats()
    domain = sorted(database.domain(), key=repr)

    idbs: Dict[str, Relation] = {}
    for name in program.idb_names():
        schema = RelationSchema(name, program.arity(name))
        idbs[name] = Relation.from_rows(schema.default_attributes())

    changed = True
    while changed:
        changed = False
        stats.stages += 1
        current = dict(database.relations())
        current.update(idbs)
        snapshot = Database(current)
        for rule in program.rules:
            head_arity = rule.head.arity
            for candidate in product(domain, repeat=head_arity):
                if candidate in idbs[rule.head.relation].rows:
                    continue
                query = ConjunctiveQuery(
                    rule.head.terms, rule.body, head_name=rule.head.relation
                )
                try:
                    decided = query.decision_instance(candidate)
                except Exception:
                    continue  # candidate conflicts with head constants
                stats.record(decided)
                if oracle(decided, snapshot):
                    idbs[rule.head.relation] = idbs[rule.head.relation].union(
                        Relation.from_rows(idbs[rule.head.relation].attributes, [candidate])
                    )
                    changed = True
    return idbs[program.goal], stats
