"""Theorem 1(2), parameter v upper bound for *prenex* positive queries.

For a closed prenex positive query Q = ∃y_1...∃y_k ψ and database d,
introduce Boolean variables z_{i,c} for every quantified-variable index i
and domain constant c ("y_i is mapped to c"), and build the formula

    φ = ⋀_i ⋀_{c≠c'} (¬z_{i,c} ∨ ¬z_{i,c'})  ∧  ψ̂

where ψ̂ replaces each relational atom a = R(τ) by

    θ_a = ⋁_{s ∈ R, s agrees with τ's constants} ⋀_{j : τ[j] = y_i} z_{i, s[j]}.

Q is true on d iff φ has a weight-k satisfying assignment.  Together with
the hardness reduction this makes prenex positive queries W[SAT]-complete
under parameter v.
"""

from __future__ import annotations

from itertools import combinations
from typing import Any, Dict, List

from ..circuits.formulas import (
    BoolAnd,
    BoolFormula,
    BoolNot,
    BoolOr,
    BoolVar,
)
from ..errors import ReductionError
from ..parametric.problems.weighted_sat_problems import (
    WEIGHTED_FORMULA_SAT,
    WeightedFormulaInstance,
)
from ..query.atoms import Atom
from ..query.first_order import And, AtomFormula, Exists, Formula, Or
from ..query.positive import PositiveQuery
from ..query.terms import Constant, Variable
from .problem_base import ParametricReduction
from .query_problems import POSITIVE_EVALUATION_V, QueryEvaluationInstance


def _z(i: int, c: Any) -> str:
    return f"z_{i}_{c!r}"


def _true_formula(any_var: str) -> BoolFormula:
    return BoolOr((BoolVar(any_var), BoolNot(BoolVar(any_var))))


def _false_formula(any_var: str) -> BoolFormula:
    return BoolAnd((BoolVar(any_var), BoolNot(BoolVar(any_var))))


def prenex_positive_to_wsat(
    instance: QueryEvaluationInstance,
) -> WeightedFormulaInstance:
    """Build (φ, k) for a prenex positive query-evaluation instance."""
    query = instance.query
    if not isinstance(query, PositiveQuery):
        raise ReductionError("expected a positive query")
    decided = query.decision_instance(instance.candidate)
    if not decided.is_prenex():
        raise ReductionError("the construction requires a prenex query")

    # Peel the quantifier prefix.
    prefix: List[Variable] = []
    node: Formula = decided.formula
    while isinstance(node, Exists):
        prefix.append(node.variable)
        node = node.operand
    if not prefix:
        raise ReductionError("the construction needs at least one quantifier")
    index_of: Dict[Variable, int] = {y: i for i, y in enumerate(prefix, start=1)}
    k = len(prefix)

    domain = sorted(instance.database.domain(), key=repr)
    if not domain:
        raise ReductionError("empty database domain")
    anchor = _z(1, domain[0])

    def atom_formula(atom: Atom) -> BoolFormula:
        relation = instance.database[atom.relation]
        disjuncts: List[BoolFormula] = []
        for row in sorted(relation.rows, key=repr):
            conjuncts: List[BoolFormula] = []
            ok = True
            for position, term in enumerate(atom.terms):
                if isinstance(term, Constant):
                    if term.value != row[position]:
                        ok = False
                        break
                else:
                    if term not in index_of:
                        raise ReductionError(
                            f"free variable {term!r} in a closed query"
                        )
                    conjuncts.append(
                        BoolVar(_z(index_of[term], row[position]))
                    )
            if not ok:
                continue
            if conjuncts:
                disjuncts.append(
                    conjuncts[0] if len(conjuncts) == 1 else BoolAnd(conjuncts)
                )
            else:
                disjuncts.append(_true_formula(anchor))
        if not disjuncts:
            return _false_formula(anchor)
        return disjuncts[0] if len(disjuncts) == 1 else BoolOr(disjuncts)

    def translate(f: Formula) -> BoolFormula:
        if isinstance(f, AtomFormula):
            return atom_formula(f.atom)
        if isinstance(f, And):
            return BoolAnd(translate(c) for c in f.children)
        if isinstance(f, Or):
            return BoolOr(translate(c) for c in f.children)
        raise ReductionError(f"matrix must be quantifier-free positive: {f!r}")

    at_most_one: List[BoolFormula] = []
    for i in range(1, k + 1):
        for c, c2 in combinations(domain, 2):
            at_most_one.append(
                BoolOr((BoolNot(BoolVar(_z(i, c))), BoolNot(BoolVar(_z(i, c2)))))
            )
    # "At least one value per variable" is implied by weight k together
    # with at-most-one, but conjoining it explicitly keeps every z_{i,c} in
    # the formula's variable universe (needed when |D| = 1, where no
    # at-most-one clause exists).
    at_least_one: List[BoolFormula] = [
        BoolOr(tuple(BoolVar(_z(i, c)) for c in domain))
        for i in range(1, k + 1)
    ]

    pieces: List[BoolFormula] = at_most_one + at_least_one + [translate(node)]
    formula = pieces[0] if len(pieces) == 1 else BoolAnd(pieces)
    return WeightedFormulaInstance(formula=formula, k=k)


PRENEX_POSITIVE_TO_WSAT = ParametricReduction(
    name="positive-prenex[v]->weighted-formula-sat",
    source=POSITIVE_EVALUATION_V,
    target=WEIGHTED_FORMULA_SAT,
    transform=prenex_positive_to_wsat,
    parameter_bound=lambda v: v,  # k = #quantified variables ≤ v
    notes="Theorem 1(2): prenex positive queries are in W[SAT] for parameter v",
)
