"""Theorem 1(2), parameter q: positive queries are in W[1].

Two executable forms:

* :data:`POSITIVE_TO_UNION_OF_CQS` — the Turing-style reduction the paper
  states first ("we use the full power of parametric reductions"): expand
  the positive query into exponentially many conjunctive queries and ask a
  CQ oracle about each.

* :func:`positive_to_clique` / :data:`POSITIVE_TO_CLIQUE` — footnote 2's
  many-one *transformation*: turn each disjunct CQ_i into a compatibility
  graph G_i whose k_i-cliques are the consistent instantiations (one z_{a,s}
  node per atom/tuple pair; edges join compatible choices of *different*
  atoms); pad every G_i with (k − k_i) universal vertices so all parameters
  equal k = max k_i; the disjoint union has a k-clique iff the positive
  query is true.  Since clique is itself W[1]-complete, this closes the
  loop clique → CQ → positive → clique, which the test-suite verifies as a
  round trip.
"""

from __future__ import annotations

from itertools import combinations
from typing import Any, List, Tuple

from ..errors import ReductionError
from ..parametric.problems.clique import CLIQUE, CliqueInstance
from ..query.conjunctive import ConjunctiveQuery
from ..query.positive import PositiveQuery
from ..relational.database import Database
from ..workloads.graphs import Graph
from .cq_to_weighted_2cnf import cq_to_weighted_2cnf
from .problem_base import ParametricReduction, TuringParametricReduction
from .query_problems import (
    CQ_EVALUATION_Q,
    POSITIVE_EVALUATION_Q,
    QueryEvaluationInstance,
)


def positive_to_cq_instances(
    instance: QueryEvaluationInstance,
) -> Tuple[QueryEvaluationInstance, ...]:
    """The oracle queries: one CQ-evaluation instance per DNF disjunct."""
    query = instance.query
    if not isinstance(query, PositiveQuery):
        raise ReductionError("expected a positive query")
    decided = query.decision_instance(instance.candidate)
    return tuple(
        QueryEvaluationInstance(query=cq, database=instance.database, candidate=())
        for cq in decided.to_union_of_conjunctive_queries()
    )


POSITIVE_TO_UNION_OF_CQS = TuringParametricReduction(
    name="positive[q]->union-of-conjunctive[q]",
    source=POSITIVE_EVALUATION_Q,
    target=CQ_EVALUATION_Q,
    queries=positive_to_cq_instances,
    combine=lambda _instance, answers: any(answers),
    parameter_bound=lambda q: q,  # each disjunct is no larger than Q
    notes="Theorem 1(2) upper bound (Turing form): DNF expansion",
)


# ----------------------------------------------------------------------
# Footnote 2: the many-one transformation to clique
# ----------------------------------------------------------------------


def cq_to_compatibility_graph(
    query: ConjunctiveQuery, database: Database
) -> Tuple[List[Tuple[int, Tuple[Any, ...]]], List[Tuple[int, int]], int]:
    """Nodes, edges and required clique size for one conjunctive query.

    Nodes are (atom index, tuple) pairs — the z_{a,s} variables of the
    2-CNF construction; edges connect pairs from *different* atoms that are
    not in a common conflict clause.  The query is nonempty on *database*
    iff the graph has a clique of size k = #atoms.
    """
    result = cq_to_weighted_2cnf(query, database)
    names_in_order: List[str] = []
    for group_key in sorted(result.groups, key=lambda g: int(g[4:])):
        names_in_order.extend(result.groups[group_key])
    index_of = {name: i for i, name in enumerate(names_in_order)}

    conflict_pairs = set()
    for clause in result.instance.cnf.clauses:
        a, b = clause[0].variable, clause[1].variable
        conflict_pairs.add(frozenset((a, b)))

    edges: List[Tuple[int, int]] = []
    for a, b in combinations(names_in_order, 2):
        atom_a = result.bindings[a][0]
        atom_b = result.bindings[b][0]
        if atom_a == atom_b:
            continue  # never connect choices of the same atom
        if frozenset((a, b)) in conflict_pairs:
            continue
        edges.append((index_of[a], index_of[b]))

    nodes = [result.bindings[name] for name in names_in_order]
    return nodes, edges, len(result.atoms)


def positive_to_clique(instance: QueryEvaluationInstance) -> CliqueInstance:
    """Footnote 2's transformation: positive query decision → clique."""
    query = instance.query
    if not isinstance(query, PositiveQuery):
        raise ReductionError("expected a positive query")
    decided = query.decision_instance(instance.candidate)
    disjuncts = decided.to_union_of_conjunctive_queries()

    per_graph: List[Tuple[List, List, int]] = [
        cq_to_compatibility_graph(cq, instance.database) for cq in disjuncts
    ]
    k = max(size for _nodes, _edges, size in per_graph)

    all_edges: List[Tuple[int, int]] = []
    offset = 0
    total_nodes = 0
    for nodes, edges, size in per_graph:
        count = len(nodes)
        all_edges.extend((offset + a, offset + b) for a, b in edges)
        # Pad with (k - size) universal vertices, adjacent to every vertex
        # of this component (including each other).
        pad = k - size
        pad_ids = list(range(offset + count, offset + count + pad))
        component = list(range(offset, offset + count)) + pad_ids
        for i, pad_node in enumerate(pad_ids):
            for other in component:
                if other != pad_node and (other < offset + count or other < pad_node):
                    all_edges.append((min(pad_node, other), max(pad_node, other)))
        offset += count + pad
        total_nodes = offset

    return CliqueInstance(graph=Graph(range(total_nodes), set(all_edges)), k=k)


POSITIVE_TO_CLIQUE = ParametricReduction(
    name="positive[q]->clique",
    source=POSITIVE_EVALUATION_Q,
    target=CLIQUE,
    transform=positive_to_clique,
    parameter_bound=lambda q: q,  # k = max #atoms over disjuncts ≤ q
    notes="Footnote 2: many-one transformation via compatibility graphs",
)
