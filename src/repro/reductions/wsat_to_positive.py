"""Theorem 1(2), parameter v lower bound: weighted formula SAT ≤ positive.

Given a Boolean formula φ over x_1..x_n and weight k, build:

* the database with EQ = {(i,i) : 1≤i≤n} and NEQ = {(i,j) : i≠j};
* the Boolean positive query
      Q = ∃y_1...∃y_k  [⋀_{i<j} NEQ(y_i, y_j)] ∧ ψ
  where ψ replaces every positive occurrence of x_i by ⋁_{j≤k} EQ(i, y_j)
  and every negative occurrence ¬x_i by ⋀_{j≤k} NEQ(i, y_j).

φ has a weight-k satisfying assignment iff Q is true on the database.  The
query uses k variables, so this shows W[SAT]-hardness of positive queries
under parameter v (with a fixed two-relation schema).  The query is in
prenex form, which the paper leverages for the matching upper bound.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict

from ..circuits.formulas import (
    BoolAnd,
    BoolFormula,
    BoolNot,
    BoolOr,
    BoolVar,
    to_nnf,
)
from ..errors import ReductionError
from ..parametric.problems.weighted_sat_problems import (
    WEIGHTED_FORMULA_SAT,
    WeightedFormulaInstance,
)
from ..query.atoms import Atom
from ..query.first_order import And, AtomFormula, Exists, Formula, Or
from ..query.positive import PositiveQuery
from ..query.terms import Constant, Variable
from ..relational.database import Database
from ..relational.relation import Relation
from .problem_base import ParametricReduction
from .query_problems import POSITIVE_EVALUATION_V, QueryEvaluationInstance


def eq_neq_database(n: int) -> Database:
    """EQ and NEQ over the index domain {1, ..., n} (fixed schema)."""
    eq_rows = [(i, i) for i in range(1, n + 1)]
    neq_rows = [(i, j) for i in range(1, n + 1) for j in range(1, n + 1) if i != j]
    return Database(
        {
            "EQ": Relation.from_rows(("EQ.0", "EQ.1"), eq_rows),
            "NEQ": Relation.from_rows(("NEQ.0", "NEQ.1"), neq_rows),
        },
        domain=range(1, n + 1),
    )


def wsat_to_positive_query(
    formula: BoolFormula, k: int, index_of: Dict[str, int]
) -> PositiveQuery:
    """The positive query for (φ, k); *index_of* maps variable names to 1..n."""
    if k < 1:
        raise ReductionError("the construction needs k >= 1")
    ys = [Variable(f"y{j}") for j in range(1, k + 1)]
    nnf = to_nnf(formula)

    def translate(node: BoolFormula) -> Formula:
        if isinstance(node, BoolVar):
            i = index_of[node.name]
            parts = [AtomFormula(Atom("EQ", (Constant(i), y))) for y in ys]
            return parts[0] if len(parts) == 1 else Or(parts)
        if isinstance(node, BoolNot):
            inner = node.operand
            if not isinstance(inner, BoolVar):
                raise ReductionError("formula must be in NNF here")
            i = index_of[inner.name]
            parts = [AtomFormula(Atom("NEQ", (Constant(i), y))) for y in ys]
            return parts[0] if len(parts) == 1 else And(parts)
        if isinstance(node, BoolAnd):
            return And(translate(c) for c in node.children)
        if isinstance(node, BoolOr):
            return Or(translate(c) for c in node.children)
        raise ReductionError(f"unknown formula node: {node!r}")

    body: Formula = translate(nnf)
    distinct = [
        AtomFormula(Atom("NEQ", (a, b))) for a, b in combinations(ys, 2)
    ]
    if distinct:
        body = And(distinct + [body])
    matrix = body
    for y in reversed(ys):
        matrix = Exists(y, matrix)
    return PositiveQuery((), matrix, head_name="Q")


def wsat_to_positive(instance: WeightedFormulaInstance) -> QueryEvaluationInstance:
    """Transform (φ, k) into the positive-query evaluation instance."""
    names = sorted(instance.formula.variables())
    index_of = {name: i for i, name in enumerate(names, start=1)}
    query = wsat_to_positive_query(instance.formula, instance.k, index_of)
    return QueryEvaluationInstance(
        query=query, database=eq_neq_database(len(names)), candidate=()
    )


WSAT_TO_POSITIVE = ParametricReduction(
    name="weighted-formula-sat->positive[v]",
    source=WEIGHTED_FORMULA_SAT,
    target=POSITIVE_EVALUATION_V,
    transform=wsat_to_positive,
    parameter_bound=lambda k: k,  # the query uses exactly the k variables y_j
    notes="Theorem 1(2) lower bound for parameter v; fixed EQ/NEQ schema",
)
