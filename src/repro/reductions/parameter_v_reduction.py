"""Theorem 1(1) upper bound for parameter v, as a registered reduction.

Wraps :func:`repro.evaluation.bounded_variable.parameter_v_transform` (the
variable-set grouping Q, d → Q', d') as a :class:`ParametricReduction` from
the v-parametrized CQ evaluation problem to the q-parametrized one, with
the parameter bound q' ≤ 1 + 2^v·(1 + v) checked mechanically.
"""

from __future__ import annotations

from ..evaluation.bounded_variable import parameter_v_transform
from .problem_base import ParametricReduction
from .query_problems import (
    CQ_EVALUATION_Q,
    CQ_EVALUATION_V,
    QueryEvaluationInstance,
)


def _transform(instance: QueryEvaluationInstance) -> QueryEvaluationInstance:
    decided = instance.query.decision_instance(instance.candidate)
    new_query, new_database = parameter_v_transform(decided, instance.database)
    return QueryEvaluationInstance(
        query=new_query, database=new_database, candidate=()
    )


def grouped_size_bound(v: int) -> int:
    """q' ≤ 1 + 2^v · (1 + v): at most 2^v atoms of arity ≤ v, plus head."""
    return 1 + (2 ** v) * (1 + v)


CQ_V_TO_CQ_Q = ParametricReduction(
    name="conjunctive[v]->conjunctive[q]",
    source=CQ_EVALUATION_V,
    target=CQ_EVALUATION_Q,
    transform=_transform,
    parameter_bound=grouped_size_bound,
    notes="Theorem 1(1): variable-set grouping bounds the query size by f(v)",
)
