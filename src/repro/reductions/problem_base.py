"""Re-exports of the parametric-framework types used across reductions.

Keeps reduction modules import-light and avoids repeated deep paths.
"""

from ..parametric.problem import ParametricProblem
from ..parametric.reduction import (
    ParametricReduction,
    TuringParametricReduction,
    VerificationRecord,
)

__all__ = [
    "ParametricProblem",
    "ParametricReduction",
    "TuringParametricReduction",
    "VerificationRecord",
]
