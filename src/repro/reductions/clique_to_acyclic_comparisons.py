"""Theorem 3: clique ≤ acyclic conjunctive queries with comparisons.

The numeric encoding, for a graph with nodes 0..n−1 (every node given a
self-loop) and b ∈ {0, 1}:

    [i, j, b] = (i + j)·n³ + |i − j|·n² + b·n + i

Database (two binary relations):

    P = {([i,j,0], [i,j,1]) : (i,j) an edge or i = j}     (ordered pairs)
    R = {([i,j,1], [i,j',0]) : all i, j, j'}

Query (Boolean):

    S ← ⋀_{1≤i,j≤k} P(x_ij, x'_ij),
        ⋀_{1≤i≤k, 1≤j<k} R(x'_ij, x_{i,j+1}),
        ⋀_{1≤i<j≤k} x_ij < x_ji < x'_ij

The hypergraph is k disjoint P/R-alternating paths (acyclic), the
comparison graph is acyclic, only strict < is used — and S is true iff the
graph has a k-clique.  The arithmetic forces, for i < j, that the paths'
first components v_1 < ... < v_k are distinct and pairwise adjacent.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import ReductionError
from ..parametric.problems.clique import CLIQUE, CliqueInstance
from ..query.atoms import Atom, Comparison
from ..query.conjunctive import ConjunctiveQuery
from ..query.terms import Variable
from ..relational.database import Database
from ..relational.relation import Relation
from ..workloads.graphs import Graph
from .problem_base import ParametricReduction
from .query_problems import (
    ACYCLIC_COMPARISON_EVALUATION_Q,
    ACYCLIC_COMPARISON_EVALUATION_V,
    QueryEvaluationInstance,
)


def encode(i: int, j: int, b: int, n: int) -> int:
    """[i, j, b] = (i+j)n³ + |i−j|n² + bn + i."""
    return (i + j) * n ** 3 + abs(i - j) * n ** 2 + b * n + i


def comparison_database(graph: Graph) -> Database:
    """The P and R relations over the numeric encoding."""
    n = graph.num_nodes
    nodes = graph.nodes
    p_rows: List[Tuple[int, int]] = []
    for a in nodes:
        p_rows.append((encode(a, a, 0, n), encode(a, a, 1, n)))  # self-loops
        for b in graph.neighbours(a):
            p_rows.append((encode(a, b, 0, n), encode(a, b, 1, n)))
    r_rows = [
        (encode(a, b, 1, n), encode(a, c, 0, n))
        for a in nodes
        for b in nodes
        for c in nodes
    ]
    return Database(
        {
            "P": Relation.from_rows(("P.0", "P.1"), p_rows),
            "R": Relation.from_rows(("R.0", "R.1"), r_rows),
        }
    )


def comparison_query(k: int) -> ConjunctiveQuery:
    """The k-path query with the x_ij < x_ji < x'_ij comparisons."""
    if k < 1:
        raise ReductionError("k must be at least 1")

    def x(i: int, j: int) -> Variable:
        return Variable(f"x{i}_{j}")

    def xp(i: int, j: int) -> Variable:
        return Variable(f"w{i}_{j}")

    atoms: List[Atom] = []
    for i in range(1, k + 1):
        for j in range(1, k + 1):
            atoms.append(Atom("P", (x(i, j), xp(i, j))))
            if j < k:
                atoms.append(Atom("R", (xp(i, j), x(i, j + 1))))
    comparisons: List[Comparison] = []
    for i in range(1, k + 1):
        for j in range(i + 1, k + 1):
            comparisons.append(Comparison(x(i, j), x(j, i), strict=True))
            comparisons.append(Comparison(x(j, i), xp(i, j), strict=True))
    return ConjunctiveQuery((), atoms, comparisons=comparisons, head_name="S")


def clique_to_comparisons(instance: CliqueInstance) -> QueryEvaluationInstance:
    """Transform (G, k) into the Theorem 3 query-evaluation instance."""
    return QueryEvaluationInstance(
        query=comparison_query(instance.k),
        database=comparison_database(instance.graph),
        candidate=(),
    )


def comparison_query_size(k: int) -> int:
    """Exact query-size measure of :func:`comparison_query`."""
    atoms = k * k + k * (k - 1)          # P atoms + R atoms
    comparisons = k * (k - 1)            # two per unordered pair
    return 1 + 3 * atoms + 3 * comparisons


CLIQUE_TO_COMPARISONS_Q = ParametricReduction(
    name="clique->acyclic-comparisons[q]",
    source=CLIQUE,
    target=ACYCLIC_COMPARISON_EVALUATION_Q,
    transform=clique_to_comparisons,
    parameter_bound=comparison_query_size,
    notes="Theorem 3: W[1]-hardness with only strict <, binary relations",
)

CLIQUE_TO_COMPARISONS_V = ParametricReduction(
    name="clique->acyclic-comparisons[v]",
    source=CLIQUE,
    target=ACYCLIC_COMPARISON_EVALUATION_V,
    transform=clique_to_comparisons,
    parameter_bound=lambda k: 2 * k * k,
    notes="Theorem 3: W[1]-hardness under parameter v = 2k²",
)
