"""§4's closing remark: prenex first-order queries (parameter v) ≡ AW[SAT].

"For first-order queries in prenex normal form under parameter v we can
show completeness for AW[SAT] (the alternating extension of W[SAT]),
adapting along the same lines the proof of Theorem 1 for the prenex
positive queries."

Both directions, executable:

* **membership** (:func:`prenex_fo_to_awsat`): for a closed prenex query
  Q = Q_1 y_1 ... Q_k y_k ψ over database d, introduce z_{i,c} ("y_i ↦ c")
  grouped into one block per quantifier position with weight 1 — the AW
  semantics (choose exactly one variable per block, alternating ∃/∀)
  *is* the exactly-one-value-per-variable discipline, so no cardinality
  clauses are needed.  The matrix translates atom-wise (θ_a as in the
  positive case; ¬ stays ¬, sound because θ_a is exact under the
  exactly-one discipline).  Non-alternating prefixes are padded with dummy
  single-variable blocks.

* **hardness** (:func:`awsat_to_prenex_fo`): an alternating weighted
  formula instance becomes a prenex first-order query over the fixed
  schema EQ/NEQ/BLK, with k_i variables per block, block membership and
  distinctness guards ψ_i, and the body
  [ψ̂ ∧ ⋀_{∃ blocks} ψ_i] ∨ ¬[⋀_{∀ blocks} ψ_i].
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Tuple

from ..circuits.formulas import (
    BoolAnd,
    BoolFormula,
    BoolNot,
    BoolOr,
    BoolVar,
    to_nnf,
)
from ..errors import ReductionError
from ..parametric.problems.alternating import (
    AW_SAT,
    AlternatingWeightedFormulaInstance,
)
from ..query.atoms import Atom
from ..query.first_order import (
    And,
    AtomFormula,
    Exists,
    FirstOrderQuery,
    Forall,
    Formula,
    Not,
    Or,
)
from ..query.terms import Constant, Variable
from ..relational.database import Database
from ..relational.relation import Relation
from .problem_base import ParametricReduction
from .query_problems import FO_EVALUATION_V, QueryEvaluationInstance


def _z(i: int, c) -> str:
    return f"z_{i}_{c!r}"


def prenex_fo_to_awsat(
    instance: QueryEvaluationInstance,
) -> AlternatingWeightedFormulaInstance:
    """Membership direction: closed prenex FO query → AW[SAT] instance."""
    query = instance.query
    if not isinstance(query, FirstOrderQuery):
        raise ReductionError("expected a first-order query")
    decided = query.decision_instance(instance.candidate)

    prefix: List[Tuple[str, Variable]] = []
    node: Formula = decided.formula
    while isinstance(node, (Exists, Forall)):
        prefix.append(("E" if isinstance(node, Exists) else "A", node.variable))
        node = node.operand
    if not prefix:
        raise ReductionError("the construction needs at least one quantifier")
    if not _quantifier_free_fo(node):
        raise ReductionError("the query must be in prenex normal form")
    names = {v for _q, v in prefix}
    if len(names) != len(prefix):
        raise ReductionError("prenex prefix must bind distinct variables")

    domain = sorted(instance.database.domain(), key=repr)
    if not domain:
        raise ReductionError("empty database domain")
    index_of: Dict[Variable, int] = {
        v: i for i, (_q, v) in enumerate(prefix, start=1)
    }

    def atom_formula(atom: Atom) -> BoolFormula:
        relation = instance.database[atom.relation]
        anchor = _z(index_of[prefix[0][1]], domain[0])
        disjuncts: List[BoolFormula] = []
        for row in sorted(relation.rows, key=repr):
            conjuncts: List[BoolFormula] = []
            consistent = True
            for position, term in enumerate(atom.terms):
                if isinstance(term, Constant):
                    if term.value != row[position]:
                        consistent = False
                        break
                else:
                    if term not in index_of:
                        raise ReductionError(f"free variable {term!r}")
                    conjuncts.append(BoolVar(_z(index_of[term], row[position])))
            if not consistent:
                continue
            if conjuncts:
                disjuncts.append(
                    conjuncts[0] if len(conjuncts) == 1 else BoolAnd(conjuncts)
                )
            else:
                disjuncts.append(BoolOr((BoolVar(anchor), BoolNot(BoolVar(anchor)))))
        if not disjuncts:
            return BoolAnd((BoolVar(anchor), BoolNot(BoolVar(anchor))))
        return disjuncts[0] if len(disjuncts) == 1 else BoolOr(disjuncts)

    def translate(f: Formula) -> BoolFormula:
        if isinstance(f, AtomFormula):
            return atom_formula(f.atom)
        if isinstance(f, Not):
            return BoolNot(translate(f.operand))
        if isinstance(f, And):
            return BoolAnd(translate(c) for c in f.children)
        if isinstance(f, Or):
            return BoolOr(translate(c) for c in f.children)
        raise ReductionError(f"matrix is not quantifier-free: {f!r}")

    matrix = translate(node)

    # Blocks: one per quantifier position, padded into strict ∃/∀
    # alternation (∃ on odd positions) with dummy single-variable blocks.
    blocks: List[Tuple[str, ...]] = []
    weights: List[int] = []
    dummy_counter = [0]

    def push_dummy(quantifier_slot: str) -> None:
        dummy_counter[0] += 1
        blocks.append((f"__dummy_{quantifier_slot}_{dummy_counter[0]}",))
        weights.append(1)

    for quant, variable in prefix:
        expected = "E" if len(blocks) % 2 == 0 else "A"
        if quant != expected:
            push_dummy(quant)
        blocks.append(
            tuple(_z(index_of[variable], c) for c in domain)
        )
        weights.append(1)

    return AlternatingWeightedFormulaInstance(
        formula=matrix, blocks=tuple(blocks), weights=tuple(weights)
    )


def _quantifier_free_fo(node: Formula) -> bool:
    if isinstance(node, AtomFormula):
        return True
    if isinstance(node, Not):
        return _quantifier_free_fo(node.operand)
    if isinstance(node, (And, Or)):
        return all(_quantifier_free_fo(c) for c in node.children)
    return False


#: The membership reduction object.  The parameter bound: one block of
#: weight 1 per quantified variable plus at most one dummy block each,
#: so k' ≤ 2v.
PRENEX_FO_TO_AWSAT = ParametricReduction(
    name="first-order-prenex[v]->alternating-weighted-formula-sat",
    source=FO_EVALUATION_V,
    target=AW_SAT,
    transform=prenex_fo_to_awsat,
    parameter_bound=lambda v: 2 * v,
    notes="§4: prenex FO membership in AW[SAT] under parameter v",
)


# ----------------------------------------------------------------------
# Hardness direction
# ----------------------------------------------------------------------


def awsat_to_prenex_fo(
    instance: AlternatingWeightedFormulaInstance,
) -> QueryEvaluationInstance:
    """Hardness direction: AW[SAT] → prenex first-order evaluation.

    Fixed schema: EQ = {(m, m)}, NEQ = {(m, m') : m ≠ m'} over the indices
    of the formula's variables, and BLK = {(m, i) : variable m in block i}.
    """
    for block, weight in zip(instance.blocks, instance.weights):
        if weight < 1 or weight > len(block):
            raise ReductionError(
                "each block weight must satisfy 1 <= k_i <= |V_i| "
                "(degenerate blocks make the two semantics diverge)"
            )
    formula_vars = sorted(instance.formula.variables())
    all_block_vars = [name for block in instance.blocks for name in block]
    universe = sorted(set(formula_vars) | set(all_block_vars))
    if not universe:
        raise ReductionError("instance has no variables")
    index_of = {name: m for m, name in enumerate(universe, start=1)}
    n = len(universe)

    eq_rows = [(m, m) for m in range(1, n + 1)]
    neq_rows = [
        (a, b) for a in range(1, n + 1) for b in range(1, n + 1) if a != b
    ]
    blk_rows = [
        (index_of[name], i)
        for i, block in enumerate(instance.blocks, start=1)
        for name in block
    ]
    database = Database(
        {
            "EQ": Relation.from_rows(("EQ.0", "EQ.1"), eq_rows),
            "NEQ": Relation.from_rows(("NEQ.0", "NEQ.1"), neq_rows),
            "BLK": Relation.from_rows(("BLK.0", "BLK.1"), blk_rows),
        },
        domain=list(range(1, n + 1)) + [i for i in range(1, len(instance.blocks) + 1)],
    )

    block_vars: List[List[Variable]] = []
    for i, weight in enumerate(instance.weights, start=1):
        block_vars.append(
            [Variable(f"y{i}_{j}") for j in range(1, weight + 1)]
        )

    def guard(i: int) -> Formula:
        """ψ_i: block i's variables are distinct members of V_i."""
        members = block_vars[i]
        parts: List[Formula] = []
        for variable in members:
            parts.append(AtomFormula(Atom("BLK", (variable, Constant(i + 1)))))
        for a, b in combinations(members, 2):
            parts.append(AtomFormula(Atom("NEQ", (a, b))))
        return parts[0] if len(parts) == 1 else And(parts)

    nnf = to_nnf(instance.formula)

    def occurs(name: str, positive: bool) -> Formula:
        m = index_of[name]
        flat = [v for row in block_vars for v in row]
        if positive:
            parts = [
                AtomFormula(Atom("EQ", (Constant(m), y))) for y in flat
            ]
            return parts[0] if len(parts) == 1 else Or(parts)
        parts = [AtomFormula(Atom("NEQ", (Constant(m), y))) for y in flat]
        return parts[0] if len(parts) == 1 else And(parts)

    def translate(f: BoolFormula) -> Formula:
        if isinstance(f, BoolVar):
            return occurs(f.name, True)
        if isinstance(f, BoolNot):
            inner = f.operand
            if not isinstance(inner, BoolVar):
                raise ReductionError("formula must be in NNF here")
            return occurs(inner.name, False)
        if isinstance(f, BoolAnd):
            return And(translate(c) for c in f.children)
        if isinstance(f, BoolOr):
            return Or(translate(c) for c in f.children)
        raise ReductionError(f"unknown formula node: {f!r}")

    existential = [i for i in range(len(instance.blocks)) if i % 2 == 0]
    universal = [i for i in range(len(instance.blocks)) if i % 2 == 1]

    positive_part: Formula = translate(nnf)
    if existential:
        positive_part = And([positive_part] + [guard(i) for i in existential])
    if universal:
        guards = [guard(i) for i in universal]
        all_guards = guards[0] if len(guards) == 1 else And(guards)
        matrix: Formula = Or((positive_part, Not(all_guards)))
    else:
        matrix = positive_part

    formula: Formula = matrix
    for i in range(len(instance.blocks) - 1, -1, -1):
        quantifier = Exists if i % 2 == 0 else Forall
        for variable in reversed(block_vars[i]):
            formula = quantifier(variable, formula)

    query = FirstOrderQuery((), formula, head_name="Q")
    return QueryEvaluationInstance(query=query, database=database, candidate=())


AWSAT_TO_PRENEX_FO = ParametricReduction(
    name="alternating-weighted-formula-sat->first-order-prenex[v]",
    source=AW_SAT,
    target=FO_EVALUATION_V,
    transform=awsat_to_prenex_fo,
    parameter_bound=lambda k: k,  # exactly Σk_i query variables
    notes="§4: AW[SAT]-hardness of prenex first-order under parameter v",
)
