"""Query-evaluation decision problems as parametric problems.

§3 defines the objects being classified: for a query language Λ and a
parameter (q or v), the parametric problem with instances (Q, d, t) asking
whether t ∈ Q(d).  Instances here carry a query, a database and a candidate
tuple (empty for Boolean queries); the ground-truth solvers are the
library's evaluators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple, Union

from ..engine import QueryEngine
from ..evaluation.fo_eval import FirstOrderEvaluator
from ..evaluation.positive_eval import PositiveEvaluator
from ..query.conjunctive import ConjunctiveQuery
from ..query.first_order import FirstOrderQuery
from ..query.positive import PositiveQuery
from ..relational.database import Database
from .problem_base import ParametricProblem

#: Conjunctive instances (plain, ≠ and < variants alike) are solved through
#: the adaptive engine: the decision instances of one query share a single
#: plan-cache entry across candidate tuples, and the planner dispatches
#: each to the evaluator its structure admits (the naive baseline remains
#: the fallback for < atoms, so ground truth is unchanged).
_ENGINE = QueryEngine()
_POSITIVE = PositiveEvaluator()
_FO = FirstOrderEvaluator()


@dataclass(frozen=True, eq=False)
class QueryEvaluationInstance:
    """(Q, d, t): is t ∈ Q(d)?  (t = () for Boolean queries.)"""

    query: Union[ConjunctiveQuery, PositiveQuery, FirstOrderQuery]
    database: Database
    candidate: Tuple[Any, ...] = ()

    def __repr__(self) -> str:
        return (
            f"QueryEvaluationInstance({self.query!r}, {self.database!r}, "
            f"t={self.candidate!r})"
        )


def _solve_cq(instance: QueryEvaluationInstance) -> bool:
    return _ENGINE.contains(instance.query, instance.database, instance.candidate)


def _solve_positive(instance: QueryEvaluationInstance) -> bool:
    return _POSITIVE.contains(instance.query, instance.database, instance.candidate)


def _solve_fo(instance: QueryEvaluationInstance) -> bool:
    return _FO.contains(instance.query, instance.database, instance.candidate)


def _parameter_q(instance: QueryEvaluationInstance) -> int:
    return instance.query.query_size()


def _parameter_v(instance: QueryEvaluationInstance) -> int:
    return instance.query.num_variables()


def _size(instance: QueryEvaluationInstance) -> int:
    return instance.database.size()


CQ_EVALUATION_Q = ParametricProblem(
    name="conjunctive-evaluation[q]",
    solver=_solve_cq,
    parameter=_parameter_q,
    size=_size,
    description="t ∈ Q(d) for conjunctive Q, parameter = query size",
)

CQ_EVALUATION_V = ParametricProblem(
    name="conjunctive-evaluation[v]",
    solver=_solve_cq,
    parameter=_parameter_v,
    size=_size,
    description="t ∈ Q(d) for conjunctive Q, parameter = #variables",
)

POSITIVE_EVALUATION_Q = ParametricProblem(
    name="positive-evaluation[q]",
    solver=_solve_positive,
    parameter=_parameter_q,
    size=_size,
    description="t ∈ Q(d) for positive Q, parameter = query size",
)

POSITIVE_EVALUATION_V = ParametricProblem(
    name="positive-evaluation[v]",
    solver=_solve_positive,
    parameter=_parameter_v,
    size=_size,
    description="t ∈ Q(d) for positive Q, parameter = #variables",
)

FO_EVALUATION_Q = ParametricProblem(
    name="first-order-evaluation[q]",
    solver=_solve_fo,
    parameter=_parameter_q,
    size=_size,
    description="t ∈ Q(d) for first-order Q, parameter = query size",
)

FO_EVALUATION_V = ParametricProblem(
    name="first-order-evaluation[v]",
    solver=_solve_fo,
    parameter=_parameter_v,
    size=_size,
    description="t ∈ Q(d) for first-order Q, parameter = #variables",
)

#: Queries with != / < atoms are still ConjunctiveQuery objects and the
#: naive engine is ≠-aware, so the same solver is ground truth for the
#: Theorem 2 / Theorem 3 problems.
ACYCLIC_NEQ_EVALUATION_Q = ParametricProblem(
    name="acyclic-neq-evaluation[q]",
    solver=_solve_cq,
    parameter=_parameter_q,
    size=_size,
    description="t ∈ Q(d) for acyclic conjunctive Q with != atoms",
)

ACYCLIC_COMPARISON_EVALUATION_Q = ParametricProblem(
    name="acyclic-comparison-evaluation[q]",
    solver=_solve_cq,
    parameter=_parameter_q,
    size=_size,
    description="t ∈ Q(d) for acyclic conjunctive Q with < atoms",
)

ACYCLIC_COMPARISON_EVALUATION_V = ParametricProblem(
    name="acyclic-comparison-evaluation[v]",
    solver=_solve_cq,
    parameter=_parameter_v,
    size=_size,
    description="t ∈ Q(d) for acyclic conjunctive Q with < atoms",
)
