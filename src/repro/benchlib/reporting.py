"""ASCII table / series rendering for benchmark output.

Every benchmark prints the rows and series the corresponding paper artifact
reports (Figure 1, the Theorem 1 table, the asymptotic-shape claims), in a
format that EXPERIMENTS.md quotes directly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence, Union


def format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 0.001 or abs(value) >= 10_000:
            return f"{value:.2e}"
        return f"{value:.4g}"
    return str(value)


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str = ""
) -> str:
    """A fixed-width ASCII table with an optional title line."""
    rendered_rows: List[List[str]] = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    separator = "|-" + "-|-".join("-" * w for w in widths) + "-|"
    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(separator)
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def print_table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str = ""
) -> None:
    """Print :func:`render_table` (benchmarks run with -s to show it)."""
    print()
    print(render_table(headers, rows, title=title))


def render_series(name: str, points: Sequence[tuple]) -> str:
    """A one-line (x, y) series, e.g. ``n_q: (10, 0.001) (20, 0.008) ...``."""
    inner = " ".join(f"({format_cell(x)}, {format_cell(y)})" for x, y in points)
    return f"{name}: {inner}"


def write_json_report(path: Union[str, Path], payload: Dict[str, Any]) -> Path:
    """Write a machine-readable benchmark report (sorted keys, trailing \\n).

    The perf-tracking files committed to the repo (``BENCH_*.json``) are all
    produced through this helper so successive PRs yield minimal diffs.
    """
    target = Path(path)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target


def read_json_report(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a report written by :func:`write_json_report` ({} if missing)."""
    target = Path(path)
    if not target.exists():
        return {}
    return json.loads(target.read_text())
