"""Shared benchmark harness: timing, sweeps, growth fits, table rendering."""

from .reporting import (
    format_cell,
    print_table,
    read_json_report,
    render_series,
    render_table,
    write_json_report,
)
from .runner import (
    Measurement,
    add_json_argument,
    emit_json_report,
    growth_exponent,
    json_report_payload,
    speedup,
    sweep,
    time_thunk,
)

__all__ = [
    "Measurement",
    "add_json_argument",
    "emit_json_report",
    "format_cell",
    "growth_exponent",
    "json_report_payload",
    "print_table",
    "read_json_report",
    "render_series",
    "render_table",
    "speedup",
    "sweep",
    "time_thunk",
    "write_json_report",
]
