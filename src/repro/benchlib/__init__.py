"""Shared benchmark harness: timing, sweeps, growth fits, table rendering."""

from .reporting import (
    format_cell,
    print_table,
    read_json_report,
    render_series,
    render_table,
    write_json_report,
)
from .runner import Measurement, growth_exponent, speedup, sweep, time_thunk

__all__ = [
    "Measurement",
    "format_cell",
    "growth_exponent",
    "print_table",
    "read_json_report",
    "render_series",
    "render_table",
    "speedup",
    "sweep",
    "time_thunk",
    "write_json_report",
]
