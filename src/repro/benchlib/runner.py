"""Timing and sweep utilities shared by the benchmark suite.

The benchmarks print paper-shaped tables (rows = parameter settings,
columns = engines), so the harness here is deliberately simple: time a
thunk a few times, keep the best, run sweeps over parameter grids, and
estimate growth exponents from log–log slopes for the n^k-shape claims.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass
class Measurement:
    """One timed configuration."""

    label: str
    parameters: Dict[str, Any]
    seconds: float
    result: Any = None


def time_thunk(thunk: Callable[[], Any], repeats: int = 3) -> Tuple[float, Any]:
    """Best-of-*repeats* wall time of *thunk*; returns (seconds, last result)."""
    best = math.inf
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = thunk()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def sweep(
    label: str,
    grid: Iterable[Dict[str, Any]],
    make_thunk: Callable[..., Callable[[], Any]],
    repeats: int = 3,
) -> List[Measurement]:
    """Time ``make_thunk(**point)()`` for each grid point."""
    out: List[Measurement] = []
    for point in grid:
        thunk = make_thunk(**point)
        seconds, result = time_thunk(thunk, repeats=repeats)
        out.append(
            Measurement(label=label, parameters=dict(point), seconds=seconds, result=result)
        )
    return out


def growth_exponent(
    sizes: Sequence[float], times: Sequence[float]
) -> float:
    """Least-squares slope of log(time) against log(size).

    For data following t = c·n^e, returns ≈ e; the shape checks assert,
    e.g., that the acyclic engine's exponent stays near 1 while the naive
    engine's grows with k.
    """
    if len(sizes) != len(times) or len(sizes) < 2:
        raise ValueError("need at least two matching (size, time) points")
    xs = [math.log(s) for s in sizes]
    ys = [math.log(max(t, 1e-9)) for t in times]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    denominator = sum((x - mean_x) ** 2 for x in xs)
    if denominator == 0:
        raise ValueError("all sizes identical")
    return numerator / denominator


def speedup(baseline: float, contender: float) -> float:
    """baseline / contender, guarding tiny denominators."""
    return baseline / max(contender, 1e-9)
