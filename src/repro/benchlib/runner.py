"""Timing and sweep utilities shared by the benchmark suite.

The benchmarks print paper-shaped tables (rows = parameter settings,
columns = engines), so the harness here is deliberately simple: time a
thunk a few times, keep the best, run sweeps over parameter grids, and
estimate growth exponents from log–log slopes for the n^k-shape claims.

Machine-readable output: every standalone benchmark script supports a
``--json PATH`` flag through :func:`add_json_argument` /
:func:`emit_json_report`, writing the same schema as the committed
``BENCH_*.json`` baselines (top-level ``bench`` / ``smoke`` / ``repeats``
keys plus benchmark-specific sections).  The CI regression gate
(``benchmarks/check_regressions.py``) and local runs therefore share one
code path — the gate compares whatever a fresh ``--json`` run emits
against the committed baseline, leaf by leaf.
"""

from __future__ import annotations

import argparse
import math
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .reporting import write_json_report


@dataclass
class Measurement:
    """One timed configuration."""

    label: str
    parameters: Dict[str, Any]
    seconds: float
    result: Any = None


def time_thunk(thunk: Callable[[], Any], repeats: int = 3) -> Tuple[float, Any]:
    """Best-of-*repeats* wall time of *thunk*; returns (seconds, last result)."""
    best = math.inf
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = thunk()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def sweep(
    label: str,
    grid: Iterable[Dict[str, Any]],
    make_thunk: Callable[..., Callable[[], Any]],
    repeats: int = 3,
) -> List[Measurement]:
    """Time ``make_thunk(**point)()`` for each grid point."""
    out: List[Measurement] = []
    for point in grid:
        thunk = make_thunk(**point)
        seconds, result = time_thunk(thunk, repeats=repeats)
        out.append(
            Measurement(label=label, parameters=dict(point), seconds=seconds, result=result)
        )
    return out


def growth_exponent(
    sizes: Sequence[float], times: Sequence[float]
) -> float:
    """Least-squares slope of log(time) against log(size).

    For data following t = c·n^e, returns ≈ e; the shape checks assert,
    e.g., that the acyclic engine's exponent stays near 1 while the naive
    engine's grows with k.
    """
    if len(sizes) != len(times) or len(sizes) < 2:
        raise ValueError("need at least two matching (size, time) points")
    xs = [math.log(s) for s in sizes]
    ys = [math.log(max(t, 1e-9)) for t in times]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    denominator = sum((x - mean_x) ** 2 for x in xs)
    if denominator == 0:
        raise ValueError("all sizes identical")
    return numerator / denominator


def speedup(baseline: float, contender: float) -> float:
    """baseline / contender, guarding tiny denominators."""
    return baseline / max(contender, 1e-9)


# ----------------------------------------------------------------------
# Machine-readable reports (shared schema with the BENCH_*.json baselines)
# ----------------------------------------------------------------------


def add_json_argument(parser: argparse.ArgumentParser) -> None:
    """Register the standard ``--json PATH`` flag on a benchmark CLI."""
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the machine-readable report (BENCH_*.json schema) here",
    )


def json_report_payload(
    bench: str, *, smoke: bool, repeats: int, **sections: Any
) -> Dict[str, Any]:
    """Assemble the standard report: header keys + named sections.

    Every committed baseline and every ``--json`` run goes through this
    helper, so the regression gate can rely on the shape: ``bench`` names
    the benchmark, ``smoke``/``repeats`` describe the configuration, and
    each section holds either a mapping or a list of record dicts whose
    timing leaves are keyed ``*seconds*``.
    """
    payload: Dict[str, Any] = {"bench": bench, "smoke": smoke, "repeats": repeats}
    for name, section in sections.items():
        payload[name] = section
    return payload


def emit_json_report(path: Optional[str], payload: Dict[str, Any]) -> None:
    """Write *payload* to *path* (no-op when the flag was not given)."""
    if path is None:
        return
    write_json_report(path, payload)
    print(f"\nwrote {path}")
