"""Deterministic fault injection at named sites.

Chaos testing needs faults that are *repeatable*: a test that sometimes
sees the worker crash and sometimes does not pins nothing.  A
:class:`FaultPlan` maps **site names** to countdown specs — each site
fires a bounded number of times, optionally after skipping its first
triggers — so "the second response on this server is delayed 50 ms, the
third connection is dropped" is one literal dict.

Sites are plain strings; the component that owns a site decides what a
firing means:

======================  ===============================================
site                    effect at the owning component
======================  ===============================================
``pool.worker_crash``   :class:`~repro.parallel.pool.WorkerPool` kills a
                        process-pool worker (real ``BrokenProcessPool``)
                        or simulates a broken executor in thread/serial
                        mode — exercising respawn + serial-retry recovery
``server.delay``        ``QueryServer`` sleeps ``delay`` seconds before
                        writing the response
``server.drop``         ``QueryServer`` closes the connection instead of
                        responding
``server.torn_frame``   ``QueryServer`` writes half the response frame,
                        then closes the connection
``fleet.worker_kill``   :class:`~repro.fleet.FleetSupervisor` SIGKILLs the
                        worker it is about to health-probe — the chaos
                        suite's mid-flood process crash
``fleet.slow_start``    the supervisor sleeps ``delay`` seconds before
                        spawning a worker process (stretches the
                        window in which the fleet runs degraded)
``fleet.ready_timeout`` a freshly spawned worker is treated as if it
                        never printed ``QUERYSERVER READY``: killed and
                        counted as a failed start (breaker food)
======================  ===============================================

Plans travel two ways: passed to a constructor
(``QueryServer(fault_plan=...)``, ``WorkerPool(fault_plan=...)``), or —
so *subprocess* servers misbehave on cue — through the ``REPRO_FAULTS``
environment variable as JSON (:meth:`FaultPlan.from_env` /
:meth:`FaultPlan.to_env`).  With the variable unset every plan is empty
and ``fire`` is a dict lookup miss: the production path pays nothing.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

#: The sites the shipped components consult (documentation + validation).
FAULT_SITES = (
    "pool.worker_crash",
    "server.delay",
    "server.drop",
    "server.torn_frame",
    "fleet.worker_kill",
    "fleet.slow_start",
    "fleet.ready_timeout",
)

#: Environment variable carrying a JSON fault plan into subprocesses.
FAULTS_ENV_VAR = "REPRO_FAULTS"


@dataclass(frozen=True)
class Fault:
    """One firing of a fault site."""

    site: str
    #: Seconds of injected latency (``server.delay``; 0 elsewhere).
    delay: float = 0.0


class _Spec:
    """Mutable countdown state behind one site's spec."""

    __slots__ = ("after", "times", "delay", "triggered", "fired")

    def __init__(self, after: int, times: int, delay: float) -> None:
        self.after = after
        self.times = times
        self.delay = delay
        self.triggered = 0  # every fire() consultation
        self.fired = 0  # consultations that actually injected


class FaultPlan:
    """Site name → deterministic countdown of injected faults.

    Parameters
    ----------
    specs:
        ``{site: {"times": int, "after": int, "delay": float}}``.  A site
        fires on its ``after+1``-th through ``after+times``-th triggers;
        all keys are optional (``times`` defaults to 1).

    The plan is thread-safe: sites are consulted from event-loop code,
    dispatch threads, and pool workers alike.
    """

    def __init__(self, specs: Optional[Mapping[str, Mapping[str, Any]]] = None) -> None:
        self._specs: Dict[str, _Spec] = {}
        self._lock = threading.Lock()
        for site, raw in dict(specs or {}).items():
            if not isinstance(raw, Mapping):
                raise ValueError(f"fault spec for {site!r} must be a mapping")
            if site not in FAULT_SITES:
                # A typo'd site would silently never fire — the worst
                # possible failure mode for a chaos config.
                raise ValueError(
                    f"unknown fault site {site!r}; known sites: {FAULT_SITES}"
                )
            self._specs[str(site)] = _Spec(
                after=int(raw.get("after", 0)),
                times=int(raw.get("times", 1)),
                delay=float(raw.get("delay", 0.0)),
            )

    # ------------------------------------------------------------------

    @classmethod
    def from_env(cls, env_var: str = FAULTS_ENV_VAR) -> "FaultPlan":
        """The plan in ``$REPRO_FAULTS`` (empty plan when unset/blank)."""
        raw = os.environ.get(env_var, "").strip()
        if not raw:
            return cls()
        payload = json.loads(raw)
        if not isinstance(payload, dict):
            raise ValueError(f"{env_var} must hold a JSON object, got {raw!r}")
        return cls(payload)

    def to_env(self) -> str:
        """The JSON form ``from_env`` reads (current countdowns included)."""
        return json.dumps(
            {
                site: {
                    "after": spec.after,
                    "times": spec.times,
                    "delay": spec.delay,
                }
                for site, spec in self._specs.items()
            },
            sort_keys=True,
        )

    # ------------------------------------------------------------------

    @property
    def empty(self) -> bool:
        return not self._specs

    def __bool__(self) -> bool:
        return bool(self._specs)

    def fire(self, site: str) -> Optional[Fault]:
        """Consult *site*: a :class:`Fault` when it fires, else ``None``."""
        spec = self._specs.get(site)
        if spec is None:
            return None
        with self._lock:
            spec.triggered += 1
            if spec.triggered <= spec.after or spec.fired >= spec.times:
                return None
            spec.fired += 1
            return Fault(site=site, delay=spec.delay)

    def fired(self, site: str) -> int:
        """How many times *site* has actually injected so far."""
        spec = self._specs.get(site)
        return spec.fired if spec is not None else 0

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{site}:{spec.fired}/{spec.times}" for site, spec in self._specs.items()
        )
        return f"FaultPlan({inner or 'empty'})"


__all__ = ["FAULT_SITES", "FAULTS_ENV_VAR", "Fault", "FaultPlan"]
