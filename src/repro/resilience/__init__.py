"""End-to-end resilience: deadlines, cancellation, retries, fault injection.

The engine stack (kernel → adaptive engine → sharded parallel layer →
async service → TCP protocol) serves real cross-process traffic; this
package is what makes it *fail well* under the traffic the ROADMAP's
fleet-scale story implies.  Adversarial query shapes blow past any cost
model (Mengel's lower bounds guarantee it), workers crash, clients
vanish mid-request, and networks tear frames — so graceful degradation
is a correctness property, built from three small pieces:

:mod:`.token`
    :class:`CancelToken` — a cooperative deadline/cancellation token the
    service activates around every engine call and the evaluators check
    at level boundaries and shard-map steps, so oversized queries abort
    with a typed :class:`~repro.errors.DeadlineExceededError` instead of
    running unbounded.  Worker pools propagate the active token into
    their worker threads.

:mod:`.policy`
    :class:`RetryPolicy` — idempotent-request retry with exponential
    backoff + deterministic jitter, a bounded attempt/elapsed budget,
    and a typed :class:`~repro.errors.RetryExhaustedError` when the
    budget runs out.  Both protocol clients accept one.

:mod:`.faults`
    :class:`FaultPlan` — deterministic fault injection at named sites
    (worker crashes, delayed responses, dropped connections, torn
    frames), driven by constructor or the ``REPRO_FAULTS`` environment
    variable so subprocess servers misbehave on cue.  Powers the chaos
    suite and ``bench_resilience.py``.

See ``docs/resilience.md`` for deadline semantics, the retry policy, the
fault-site catalog, and the degradation matrix.
"""

from .faults import FAULT_SITES, Fault, FaultPlan
from .policy import DEFAULT_RETRY_CODES, RetryPolicy
from .token import CancelToken, activate, check_cancelled, current_token, swap_token

__all__ = [
    "CancelToken",
    "DEFAULT_RETRY_CODES",
    "FAULT_SITES",
    "Fault",
    "FaultPlan",
    "RetryPolicy",
    "activate",
    "check_cancelled",
    "current_token",
    "swap_token",
]
