"""Client-side retry policy: exponential backoff, jitter, bounded budgets.

Every operation the wire protocol carries is idempotent — queries are
read-only, ``cancel`` and ``ping`` are safe to repeat — so a client may
retry a failed request without at-most-once bookkeeping.  What it must
not do is retry *blindly*: a parse error will fail identically forever,
while a dropped connection, a torn frame, or a ``server_busy`` rejection
deserve another attempt.  :class:`RetryPolicy` encodes that split:

* :meth:`RetryPolicy.retryable` classifies a failure — transport errors
  (``ConnectionError``/``OSError``, including the typed
  :class:`~repro.errors.ConnectionLostError` and timeout errors) retry;
  structured server errors retry only when their wire code is in
  :attr:`RetryPolicy.retry_codes`;
* :meth:`RetryPolicy.delay_for` yields exponential backoff with
  deterministic jitter (the caller supplies the ``random.Random``, so
  chaos tests replay byte-identical schedules);
* the budget is bounded twice — ``max_attempts`` per request and
  ``max_elapsed`` across all of a request's attempts — after which the
  client raises :class:`~repro.errors.RetryExhaustedError` carrying the
  final underlying failure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from ..errors import ReproError

#: Wire error codes that indicate a *transient* server condition: the
#: server was up and answered, but could not take the request right now.
DEFAULT_RETRY_CODES: FrozenSet[str] = frozenset(
    {"server_busy", "backpressure", "shutting_down"}
)


@dataclass(frozen=True)
class RetryPolicy:
    """How a client retries idempotent requests.

    Parameters
    ----------
    max_attempts:
        Total tries per request, the first one included (≥ 1).
    base_delay / multiplier / max_delay:
        Backoff schedule: attempt *k* (1-based) waits
        ``min(base_delay * multiplier**(k-1), max_delay)`` before its
        jitter.
    jitter:
        Fraction of each delay drawn uniformly in ``[-j, +j]`` — breaks
        retry synchronization across clients without losing determinism
        (the RNG is caller-injected).
    max_elapsed:
        Optional wall-clock budget across every attempt of one request;
        once spent, the client stops retrying even with attempts left.
    retry_codes:
        Structured server-error codes worth another attempt.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    max_elapsed: Optional[float] = None
    retry_codes: FrozenSet[str] = field(default_factory=lambda: DEFAULT_RETRY_CODES)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    # ------------------------------------------------------------------

    def delay_for(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Backoff before retry number *attempt* (1 = first retry)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        delay = min(
            self.base_delay * self.multiplier ** (attempt - 1), self.max_delay
        )
        if self.jitter and rng is not None:
            delay *= 1.0 + rng.uniform(-self.jitter, self.jitter)
        return max(0.0, delay)

    def retryable(self, error: BaseException) -> bool:
        """Is *error* worth another attempt at all?

        Transport-level failures are; structured server answers only when
        their code says the condition was transient.  Everything else —
        parse errors, schema errors, deadline expiry — would fail the
        same way again.
        """
        code = getattr(error, "code", None)
        if isinstance(code, str):
            # A structured answer (RemoteQueryError, or a typed local
            # rejection): the server was reachable; retry only transient
            # codes.  This branch must win over the isinstance checks —
            # ConnectionLostError is both ReproError and ConnectionError
            # but carries no code, so it falls through to transport.
            if isinstance(error, ReproError):
                return code in self.retry_codes
        if isinstance(error, (ConnectionError, TimeoutError)):
            return True
        if isinstance(error, OSError):
            return True
        return False


__all__ = ["DEFAULT_RETRY_CODES", "RetryPolicy"]
