"""Cooperative cancellation tokens with deadlines.

A :class:`CancelToken` is the one object that crosses every layer of a
request's execution: the service mints it at admission (from the wire
request's ``deadline`` or from a client abandoning the request), the
dispatch thread *activates* it around the engine call, the worker pools
propagate it into their worker threads, and the evaluators *check* it at
natural safe points — join-tree level boundaries, shard-map steps, and
(strided) the naive evaluator's backtracking search.

Cancellation is cooperative on purpose: evaluators hold no external
resources mid-pass, so a check-point abort is always consistent, and the
check itself is one thread-local read plus two attribute loads — cheap
enough for per-node granularity (the no-fault overhead budget of the
resilience layer is <5%, measured by ``bench_resilience.py``).

Thread-safety: ``cancel`` is a single attribute write, ``check`` reads
immutable-after-cancel state; CPython's per-opcode atomicity makes both
safe without a lock, and tokens never cross process boundaries (process
pools re-check at the shard-map step in the coordinating thread).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from ..errors import CancelledRequestError, DeadlineExceededError

_ACTIVE = threading.local()


class CancelToken:
    """One request's deadline + cancellation state, checked cooperatively.

    Parameters
    ----------
    deadline:
        Seconds this request may run, measured from token construction.
        ``None`` means no deadline — the token then only carries explicit
        cancellation (client disconnect, cancel message, abandonment).
    """

    __slots__ = ("_deadline", "_expires_at", "_cancelled", "_reason")

    def __init__(self, deadline: Optional[float] = None) -> None:
        if deadline is not None and deadline <= 0:
            # A non-positive budget is expired on arrival; normalize so
            # ``check`` raises the deadline error immediately.
            deadline = 0.0
        self._deadline = deadline
        self._expires_at = (
            None if deadline is None else time.monotonic() + deadline
        )
        self._cancelled = False
        self._reason = ""

    # ------------------------------------------------------------------

    @property
    def deadline(self) -> Optional[float]:
        """The original budget in seconds (``None`` = unbounded)."""
        return self._deadline

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` was called (deadline expiry aside)."""
        return self._cancelled

    @property
    def reason(self) -> str:
        return self._reason

    @property
    def expired(self) -> bool:
        """True once the deadline (if any) has passed."""
        expires_at = self._expires_at
        return expires_at is not None and time.monotonic() >= expires_at

    def remaining(self) -> Optional[float]:
        """Seconds left on the deadline (``None`` = unbounded, ≥ 0)."""
        expires_at = self._expires_at
        if expires_at is None:
            return None
        return max(0.0, expires_at - time.monotonic())

    # ------------------------------------------------------------------

    def cancel(self, reason: str = "cancelled") -> None:
        """Request cooperative teardown (idempotent, any thread)."""
        if not self._cancelled:
            self._reason = reason
            self._cancelled = True

    def check(self) -> None:
        """Raise the typed teardown error when expired or cancelled.

        Deadline expiry wins over explicit cancellation: an abandoned
        request whose deadline also passed reports ``deadline_exceeded``,
        the code its originator already received.
        """
        if self.expired:
            raise DeadlineExceededError(
                f"deadline of {self._deadline:g}s exceeded",
                deadline=self._deadline,
            )
        if self._cancelled:
            raise CancelledRequestError(
                f"request cancelled: {self._reason}", reason=self._reason
            )

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else (
            "expired" if self.expired else "live"
        )
        budget = "∞" if self._deadline is None else f"{self._deadline:g}s"
        return f"CancelToken({state}, deadline={budget})"


# ----------------------------------------------------------------------
# The ambient token: thread-local, pool-propagated
# ----------------------------------------------------------------------


def current_token() -> Optional[CancelToken]:
    """The token active on this thread (``None`` outside any request)."""
    return getattr(_ACTIVE, "token", None)


def swap_token(token: Optional[CancelToken]) -> Optional[CancelToken]:
    """Install *token* as this thread's active token; return the previous.

    The worker pools use this pair-wise to carry the submitting thread's
    token into their worker threads for the duration of each task.
    """
    previous = getattr(_ACTIVE, "token", None)
    _ACTIVE.token = token
    return previous


@contextmanager
def activate(token: Optional[CancelToken]) -> Iterator[Optional[CancelToken]]:
    """Scope *token* as the active token of the current thread."""
    previous = swap_token(token)
    try:
        yield token
    finally:
        swap_token(previous)


def check_cancelled() -> None:
    """Evaluator check-point: raise if this thread's active token says so.

    A no-op (one thread-local read) when no token is active, so the
    sequential evaluators pay nothing outside the service.
    """
    token = getattr(_ACTIVE, "token", None)
    if token is not None:
        token.check()


__all__ = [
    "CancelToken",
    "activate",
    "check_cancelled",
    "current_token",
    "swap_token",
]
