"""Fault-tolerant serving fleet: supervised workers + failover routing.

The protocol layer (PR 5) made one ``QueryServer`` process serve
cross-process traffic; the resilience layer (PR 6) taught every tier to
fail *typed* instead of hanging.  This package composes them into a
**fleet**: N worker server subprocesses under a supervisor, with a
router that spreads load across the live ones and fails idempotent
requests over when a worker dies mid-flight.

:class:`FleetSupervisor`
    Spawns N ``python -m repro.protocol.server`` subprocesses (the PR 5
    executable, unchanged), reads each worker's ``QUERYSERVER READY``
    handshake, health-checks them with periodic ``ping`` probes, and
    respawns crashed workers with exponential backoff.  A per-worker
    circuit breaker (closed → open → half-open) stops a flapping worker
    from burning the fleet's attention; a graceful
    :meth:`~FleetSupervisor.rolling_restart` drains workers one at a
    time so capacity never drops below N-1.

:class:`FleetRouter` / :class:`AsyncFleetRouter`
    Route operations to the least-loaded live worker — "load" is the sum
    of cost-weighted in-flight requests, where a shape's cost is the p95
    of its recent latencies (the same
    :class:`~repro.engine.stats.LatencyReservoir` arithmetic the engine
    ledger uses).  Every wire operation is idempotent, so a transport
    failure triggers failover: the router reports the worker to the
    supervisor, re-routes to a healthy replica under a
    :class:`~repro.resilience.RetryPolicy`, and only raises
    :class:`~repro.errors.FleetDrainedError` once the whole fleet is
    unreachable.

Workloads load fleet-wide without restarts: ``register_database``
broadcasts an encoded database to every live worker and the supervisor
replays it onto every *future* respawn — a worker that crashes and comes
back serves the same catalog as its peers.

Chaos coverage lives in ``tests/test_fleet_chaos.py``: SIGKILL a worker
mid-flood and every client request still answers, byte-identical to a
sequential in-process engine.  See ``docs/fleet.md``.
"""

from .router import AsyncFleetRouter, FleetRouter
from .supervisor import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    FleetSupervisor,
    WorkerSnapshot,
)

__all__ = [
    "AsyncFleetRouter",
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "FleetRouter",
    "FleetSupervisor",
    "WorkerSnapshot",
]
