"""``FleetSupervisor``: N worker server subprocesses, kept alive.

Each worker is the unmodified PR 5 server executable —
``python -m repro.protocol.server --port 0 --database NAME=PATH`` — so
everything the single-server stack already guarantees (structured
errors, fairness lanes, graceful SIGTERM drain) holds per worker; the
supervisor's job is purely *process* lifecycle:

* **spawn** each worker on a free port and read its
  ``QUERYSERVER READY host=... port=...`` handshake (with a deadline —
  a worker that never reports is killed and counted as a failed start);
* **probe** live workers every ``probe_interval`` seconds with a wire
  ``ping`` on a short timeout; ``probe_failures`` consecutive misses
  condemn the worker even when its process is technically alive (a hung
  event loop looks exactly like this);
* **respawn** crashed workers with exponential backoff
  (``backoff_base * 2^(recent_crashes-1)``, capped), where "recent"
  means within ``flap_window`` seconds — old crashes stop counting;
* **break the circuit** on a flapping worker: ``breaker_threshold``
  recent crashes open the breaker (no respawns for
  ``breaker_cooldown`` seconds), after which *one* half-open trial
  runs — crash again and the breaker re-opens, survive
  ``breaker_stable_after`` seconds and it closes with history cleared;
* **replay registrations**: databases installed at runtime via
  :meth:`register_database` are re-sent to every respawned worker
  before it is marked routable, so the whole fleet always serves the
  same catalog.

The routing table is :meth:`endpoints` — the ready workers' addresses
plus a monotonically increasing :attr:`version` the router uses to
invalidate its connection pools cheaply.

Fault sites (chaos suite, see :mod:`repro.resilience.faults`):
``fleet.worker_kill`` SIGKILLs the worker about to be probed,
``fleet.slow_start`` delays a spawn, ``fleet.ready_timeout`` treats a
fresh worker as if it never reported ready.
"""

from __future__ import annotations

import os
import select
import signal
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from ..protocol.client import QueryClient
from ..protocol.messages import encode_database
from ..resilience.faults import FaultPlan

#: Circuit-breaker states of one worker slot.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"

#: Worker slot states.
STARTING = "starting"
READY = "ready"
DRAINING = "draining"
BACKOFF = "backoff"
STOPPED = "stopped"


@dataclass(frozen=True)
class WorkerSnapshot:
    """Observable state of one worker slot (``FleetSupervisor.stats``)."""

    worker: int
    state: str
    breaker: str
    pid: Optional[int]
    port: Optional[int]
    restarts: int
    recent_crashes: int
    probe_failures: int


class _Worker:
    """One supervised slot: the subprocess plus its lifecycle state."""

    __slots__ = (
        "index",
        "process",
        "host",
        "port",
        "state",
        "breaker",
        "restarts",
        "crash_times",
        "probe_failures",
        "backoff_until",
        "ready_since",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: Optional[subprocess.Popen] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.state = STOPPED
        self.breaker = BREAKER_CLOSED
        self.restarts = 0
        self.crash_times: Deque[float] = deque()
        self.probe_failures = 0
        self.backoff_until = 0.0
        self.ready_since = 0.0


def _worker_env() -> Dict[str, str]:
    """Subprocess environment with this ``repro`` importable.

    The supervisor may run from a source checkout (``PYTHONPATH=src``)
    or an installed package; either way the package directory's parent
    is prepended so the worker resolves the same code.
    """
    package_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = package_root + (os.pathsep + existing if existing else "")
    return env


class FleetSupervisor:
    """Spawn, probe, and respawn a fleet of query-server workers.

    Parameters
    ----------
    databases:
        ``{name: path}`` of database JSON files every worker serves from
        birth (the ``--database`` flags of the server CLI).  Databases
        installed later via :meth:`register_database` are replayed onto
        respawns.
    workers:
        Fleet size (≥ 1).
    probe_interval / probe_timeout / probe_failures:
        Liveness cadence: a wire ``ping`` every ``probe_interval``
        seconds with ``probe_timeout`` to answer; ``probe_failures``
        consecutive misses kill and respawn the worker.
    ready_timeout:
        Seconds a fresh worker has to print its READY handshake.
    backoff_base / backoff_cap / flap_window:
        Respawn backoff: crash *k* (of the crashes within
        ``flap_window`` seconds) waits ``backoff_base * 2**(k-1)``
        seconds, capped at ``backoff_cap``.
    breaker_threshold / breaker_cooldown / breaker_stable_after:
        Circuit breaker: ``breaker_threshold`` recent crashes open it
        for ``breaker_cooldown`` seconds; the half-open trial closes it
        after ``breaker_stable_after`` stable seconds.
    server_args:
        Extra CLI arguments appended to every worker's command line
        (e.g. ``("--batch-window", "0.002")``).
    fault_plan:
        Chaos injection at the ``fleet.*`` sites; the plan is *also*
        exported to each worker's ``REPRO_FAULTS`` only when the caller
        already set that variable — worker-side sites travel by
        environment exactly as in the resilience suite.
    """

    def __init__(
        self,
        databases: Mapping[str, str],
        *,
        workers: int = 2,
        probe_interval: float = 0.25,
        probe_timeout: float = 2.0,
        probe_failures: int = 3,
        ready_timeout: float = 60.0,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        flap_window: float = 30.0,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 5.0,
        breaker_stable_after: float = 5.0,
        server_args: Sequence[str] = (),
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if not databases:
            raise ValueError("a fleet needs at least one database to serve")
        self._databases = dict(databases)
        self._count = workers
        self._probe_interval = probe_interval
        self._probe_timeout = probe_timeout
        self._probe_failures = max(1, probe_failures)
        self._ready_timeout = ready_timeout
        self._backoff_base = backoff_base
        self._backoff_cap = backoff_cap
        self._flap_window = flap_window
        self._breaker_threshold = max(1, breaker_threshold)
        self._breaker_cooldown = breaker_cooldown
        self._breaker_stable_after = breaker_stable_after
        self._server_args = tuple(server_args)
        self._faults = fault_plan if fault_plan is not None else FaultPlan()

        self._lock = threading.RLock()
        self._workers = [_Worker(index) for index in range(workers)]
        self._registered: Dict[str, Dict[str, Any]] = {}
        self._version = 0
        self._started = False
        self._closed = False
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "FleetSupervisor":
        """Spawn every worker, wait for all handshakes, start monitoring."""
        with self._lock:
            if self._started:
                return self
            if self._closed:
                raise RuntimeError("FleetSupervisor is closed")
            self._started = True
        for worker in self._workers:
            self._spawn(worker)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="fleet-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def close(self) -> None:
        """Stop monitoring and drain every worker (SIGTERM, then SIGKILL)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._stop.set()
        self._wake.set()
        if self._monitor is not None:
            self._monitor.join(timeout=30)
        for worker in self._workers:
            self._terminate(worker, grace=10.0)

    def __enter__(self) -> "FleetSupervisor":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Routing surface
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """Bumped on every membership change (router cache invalidation)."""
        with self._lock:
            return self._version

    def endpoints(self) -> List[Tuple[int, str, int]]:
        """``(worker, host, port)`` of every currently-ready worker."""
        with self._lock:
            return [
                (worker.index, worker.host, worker.port)
                for worker in self._workers
                if worker.state == READY
                and worker.host is not None
                and worker.port is not None
            ]

    def report_failure(self, worker_index: int) -> None:
        """A router saw a transport failure on *worker_index*.

        The worker is condemned immediately when its process is gone —
        the router's next :meth:`endpoints` call already excludes it —
        and the monitor is woken either way to probe and respawn without
        waiting out the probe interval.
        """
        with self._lock:
            if not 0 <= worker_index < len(self._workers):
                return
            worker = self._workers[worker_index]
            if worker.state == READY:
                process = worker.process
                if process is not None and process.poll() is not None:
                    self._on_crash(worker)
                else:
                    # Alive-but-failing: count it like a missed probe so
                    # repeated reports condemn a wedged worker.
                    worker.probe_failures += 1
                    if worker.probe_failures >= self._probe_failures:
                        self._kill(worker)
                        self._on_crash(worker)
        self._wake.set()

    def register_database(self, name: str, database: Any) -> List[int]:
        """Install *database* under *name* on every live worker.

        Accepts a :class:`~repro.relational.database.Database` or an
        already-encoded document dict.  The document is recorded and
        replayed onto every future respawn, so the fleet's catalog stays
        uniform across crashes.  Returns the indices of the workers that
        acknowledged; workers that fail the broadcast are reported as
        failures (the replay-on-respawn path heals them).
        """
        document = database if isinstance(database, dict) else encode_database(database)
        with self._lock:
            self._registered[name] = document
            targets = [
                (worker.index, worker.host, worker.port)
                for worker in self._workers
                if worker.state == READY
            ]
        acknowledged: List[int] = []
        for index, host, port in targets:
            try:
                with QueryClient(host, port, timeout=self._probe_timeout) as client:
                    client.register_database(name, document)
                acknowledged.append(index)
            except (ConnectionError, OSError):
                self.report_failure(index)
        return acknowledged

    def stats(self) -> Dict[str, Any]:
        """Fleet-level counters plus one :class:`WorkerSnapshot` per slot."""
        with self._lock:
            now = time.monotonic()
            snapshots = []
            for worker in self._workers:
                self._trim_crashes(worker, now)
                process = worker.process
                snapshots.append(
                    WorkerSnapshot(
                        worker=worker.index,
                        state=worker.state,
                        breaker=worker.breaker,
                        pid=process.pid if process is not None else None,
                        port=worker.port,
                        restarts=worker.restarts,
                        recent_crashes=len(worker.crash_times),
                        probe_failures=worker.probe_failures,
                    )
                )
            return {
                "workers": snapshots,
                "ready": sum(1 for s in snapshots if s.state == READY),
                "version": self._version,
                "registered_databases": sorted(self._registered),
            }

    def rolling_restart(self) -> None:
        """Drain and replace workers one at a time (capacity ≥ N-1).

        Each worker is marked draining (the router stops picking it),
        SIGTERMed — the server's own graceful drain flushes in-flight
        requests — and respawned before the next worker is touched.
        """
        for worker in self._workers:
            with self._lock:
                if worker.state != READY:
                    continue
                worker.state = DRAINING
                self._version += 1
            self._terminate(worker, grace=30.0)
            self._spawn(worker)

    # ------------------------------------------------------------------
    # Spawning and the READY handshake
    # ------------------------------------------------------------------

    def _command(self) -> List[str]:
        command = [
            sys.executable,
            "-m",
            "repro.protocol.server",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
        ]
        for name, path in sorted(self._databases.items()):
            command += ["--database", f"{name}={path}"]
        command += list(self._server_args)
        return command

    def _spawn(self, worker: _Worker) -> None:
        fault = self._faults.fire("fleet.slow_start")
        if fault is not None and fault.delay > 0:
            time.sleep(fault.delay)
        with self._lock:
            worker.state = STARTING
            worker.probe_failures = 0
            worker.host = None
            worker.port = None
        process = subprocess.Popen(
            self._command(),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=_worker_env(),
        )
        worker.process = process
        try:
            host, port = self._await_ready(worker, process)
        except TimeoutError:
            self._kill(worker)
            with self._lock:
                self._on_crash(worker)
            return
        except RuntimeError:
            # The worker exited before READY — a config-level failure
            # (e.g. an unloadable database file).  Breaker food.
            with self._lock:
                self._on_crash(worker)
            return
        self._replay_registered(worker, host, port)

    def _await_ready(
        self, worker: _Worker, process: subprocess.Popen
    ) -> Tuple[str, int]:
        line = self._read_line(process, self._ready_timeout)
        if line is None:
            raise TimeoutError("worker never printed READY")
        if self._faults.fire("fleet.ready_timeout") is not None:
            raise TimeoutError("injected fleet.ready_timeout")
        if not line.startswith("QUERYSERVER READY"):
            raise RuntimeError(f"unexpected handshake: {line!r}")
        host = line.rsplit("host=", 1)[1].split()[0]
        port = int(line.rsplit("port=", 1)[1])
        return host, port

    @staticmethod
    def _read_line(process: subprocess.Popen, timeout: float) -> Optional[str]:
        """One stdout line from *process*, or None on deadline/exit.

        Reads the raw pipe fd under ``select`` so a silent worker cannot
        block the supervisor past the deadline.
        """
        assert process.stdout is not None
        fd = process.stdout.fileno()
        deadline = time.monotonic() + timeout
        buffer = b""
        while b"\n" not in buffer:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            readable, _, _ = select.select([fd], [], [], min(remaining, 0.25))
            if not readable:
                if process.poll() is not None:
                    return None
                continue
            chunk = os.read(fd, 4096)
            if not chunk:
                return None  # EOF before a full line: the worker died
            buffer += chunk
        return buffer.split(b"\n", 1)[0].decode("utf-8", "replace")

    def _replay_registered(self, worker: _Worker, host: str, port: int) -> None:
        """Re-send runtime registrations, then mark the worker routable."""
        with self._lock:
            registered = list(self._registered.items())
        try:
            if registered:
                with QueryClient(host, port, timeout=self._probe_timeout) as client:
                    for name, document in registered:
                        client.register_database(name, document)
        except (ConnectionError, OSError):
            self._kill(worker)
            with self._lock:
                self._on_crash(worker)
            return
        with self._lock:
            worker.host = host
            worker.port = port
            worker.state = READY
            worker.ready_since = time.monotonic()
            worker.probe_failures = 0
            self._version += 1

    # ------------------------------------------------------------------
    # Monitoring, crashes, and the breaker
    # ------------------------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(self._probe_interval)
            self._wake.clear()
            if self._stop.is_set():
                return
            respawn: List[_Worker] = []
            probe: List[Tuple[_Worker, str, int]] = []
            with self._lock:
                now = time.monotonic()
                for worker in self._workers:
                    if worker.state == READY:
                        if self._check_ready(worker, now):
                            probe.append((worker, worker.host, worker.port))
                    elif worker.state == BACKOFF and now >= worker.backoff_until:
                        if worker.breaker == BREAKER_OPEN:
                            worker.breaker = BREAKER_HALF_OPEN
                        respawn.append(worker)
            # Pings run OUTSIDE the lock: a slow probe must never stall
            # the router's endpoints() snapshot.
            for worker, host, port in probe:
                alive = self._ping(host, port)
                with self._lock:
                    if worker.state != READY:
                        continue  # crashed/drained while we probed
                    if alive:
                        worker.probe_failures = 0
                    else:
                        worker.probe_failures += 1
                        if worker.probe_failures >= self._probe_failures:
                            self._kill(worker)
                            self._on_crash(worker)
            for worker in respawn:
                if not self._stop.is_set():
                    self._spawn(worker)

    def _check_ready(self, worker: _Worker, now: float) -> bool:
        """Process-level liveness (under the lock); True when a wire
        probe is still warranted."""
        process = worker.process
        if process is None or process.poll() is not None:
            self._on_crash(worker)
            return False
        if self._faults.fire("fleet.worker_kill") is not None:
            self._kill(worker)
            self._on_crash(worker)
            return False
        if worker.breaker == BREAKER_HALF_OPEN and (
            now - worker.ready_since >= self._breaker_stable_after
        ):
            worker.breaker = BREAKER_CLOSED
            worker.crash_times.clear()
        return worker.host is not None and worker.port is not None

    def _ping(self, host: str, port: int) -> bool:
        try:
            with QueryClient(host, port, timeout=self._probe_timeout) as client:
                return client.ping()
        except (ConnectionError, OSError):
            return False

    def _trim_crashes(self, worker: _Worker, now: float) -> None:
        while worker.crash_times and now - worker.crash_times[0] > self._flap_window:
            worker.crash_times.popleft()

    def _on_crash(self, worker: _Worker) -> None:
        """Record a crash and schedule the respawn (called under the lock)."""
        now = time.monotonic()
        self._trim_crashes(worker, now)
        worker.crash_times.append(now)
        worker.restarts += 1
        worker.probe_failures = 0
        worker.state = BACKOFF
        recent = len(worker.crash_times)
        if worker.breaker == BREAKER_HALF_OPEN:
            # The trial worker crashed: straight back to open.
            worker.breaker = BREAKER_OPEN
            worker.backoff_until = now + self._breaker_cooldown
        elif recent >= self._breaker_threshold:
            worker.breaker = BREAKER_OPEN
            worker.backoff_until = now + self._breaker_cooldown
        else:
            delay = min(
                self._backoff_base * 2 ** (recent - 1), self._backoff_cap
            )
            worker.backoff_until = now + delay
        self._version += 1
        self._drain_pipes(worker)

    @staticmethod
    def _drain_pipes(worker: _Worker) -> None:
        """Close a dead worker's pipes so fds don't accumulate."""
        process = worker.process
        if process is None:
            return
        for stream in (process.stdout, process.stderr):
            if stream is not None:
                try:
                    stream.close()
                except OSError:
                    pass

    def _kill(self, worker: _Worker) -> None:
        process = worker.process
        if process is not None and process.poll() is None:
            process.kill()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - kernel lag
                pass

    def _terminate(self, worker: _Worker, grace: float) -> None:
        """SIGTERM (graceful drain) with a SIGKILL fallback."""
        process = worker.process
        with self._lock:
            worker.state = STOPPED
            self._version += 1
        if process is None or process.poll() is not None:
            self._drain_pipes(worker)
            return
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=grace)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=10)
        self._drain_pipes(worker)


__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "FleetSupervisor",
    "WorkerSnapshot",
]
