"""``FleetRouter``: cost-aware routing with failover across the fleet.

Every operation the wire protocol carries is idempotent (queries are
read-only; ``register_database`` installs the same document on replay),
which makes failover safe by construction: if the worker serving a
request dies mid-flight, the request can simply run again on a healthy
replica.  The router turns that property into availability:

* **placement** is least-pending with cost weighting: each in-flight
  request contributes its *estimated cost* to its worker's pending
  score, and a request's cost estimate is the p95 of its shape's recent
  latencies (a :class:`~repro.engine.stats.LatencyReservoir` per shape,
  the same arithmetic the engine's ledger uses; unknown shapes count
  1.0).  A worker slogging through an expensive analytical query
  therefore stops attracting cheap point lookups even though its
  *count* of in-flight requests is low;
* **failover** wraps every call in the fleet's
  :class:`~repro.resilience.RetryPolicy`: transport failures discard
  the pooled connection, report the worker to the supervisor (which
  probes and respawns it), and re-route to another replica after the
  policy's backoff.  Structured server errors re-route only when their
  code is transient (``server_busy`` / ``backpressure`` /
  ``shutting_down``) — a parse error fails identically everywhere;
* a spent budget — or a fleet with zero ready workers for the whole
  budget — raises :class:`~repro.errors.FleetDrainedError` carrying the
  attempt count and last underlying failure.

The sync :class:`FleetRouter` is thread-safe (the chaos flood drives it
from many threads at once); :class:`AsyncFleetRouter` is a thin
``asyncio.to_thread`` facade for event-loop callers.
"""

from __future__ import annotations

import asyncio
import random
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..engine.stats import LatencyReservoir
from ..errors import FleetDrainedError, WorkerUnavailableError
from ..operations import Operation
from ..protocol.client import QueryClient
from ..protocol.messages import query_text
from ..relational.relation import Relation
from ..resilience.policy import RetryPolicy
from .supervisor import FleetSupervisor

#: Estimated cost of a shape the ledger has not seen yet.
DEFAULT_COST = 1.0

#: Failover budget when the caller does not supply a policy: generous on
#: attempts (a 2-worker fleet mid-respawn needs a few), tight on delay.
DEFAULT_FLEET_RETRY = RetryPolicy(
    max_attempts=8, base_delay=0.02, multiplier=2.0, max_delay=0.5
)


class FleetRouter:
    """Route operations across a supervised fleet, failing over on death.

    Parameters
    ----------
    supervisor:
        The :class:`~repro.fleet.FleetSupervisor` whose
        :meth:`~repro.fleet.FleetSupervisor.endpoints` is the routing
        table.  The router never spawns processes itself.
    retry:
        Failover budget (``DEFAULT_FLEET_RETRY`` when omitted).
    request_timeout:
        Socket timeout of each pooled worker connection — the bound on
        how long a silently-dead worker can hold one request before the
        typed timeout triggers failover.
    pool_per_worker:
        Idle connections kept per worker endpoint.
    """

    def __init__(
        self,
        supervisor: FleetSupervisor,
        *,
        retry: Optional[RetryPolicy] = None,
        request_timeout: Optional[float] = 30.0,
        pool_per_worker: int = 8,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._supervisor = supervisor
        self._retry = retry if retry is not None else DEFAULT_FLEET_RETRY
        self._request_timeout = request_timeout
        self._pool_per_worker = max(0, pool_per_worker)
        self._rng = rng if rng is not None else random.Random()
        self._lock = threading.Lock()
        #: (worker, port) → idle connections.  Keyed by port as well so a
        #: respawned worker (same index, new port) never inherits stale
        #: sockets; stale keys are swept on every version change.
        self._pools: Dict[Tuple[int, int], List[QueryClient]] = {}
        self._pools_version = -1
        #: worker → summed cost estimates of its in-flight requests.
        self._pending: Dict[int, float] = {}
        #: shape key → recent latencies (the routing cost ledger).
        self._ledger: Dict[str, LatencyReservoir] = {}
        self._routed: Dict[int, int] = {}
        self._failovers = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def _cost_of(self, key: str) -> float:
        with self._lock:
            reservoir = self._ledger.get(key)
            if reservoir is None or len(reservoir) == 0:
                return DEFAULT_COST
            return max(reservoir.quantile(0.95), 1e-6)

    def _observe(self, key: str, seconds: float) -> None:
        with self._lock:
            reservoir = self._ledger.get(key)
            if reservoir is None:
                reservoir = self._ledger.setdefault(key, LatencyReservoir())
            reservoir.add(seconds)

    def _pick(self, avoid: Set[int]) -> Tuple[int, str, int]:
        """The ready worker with the least cost-weighted pending load."""
        endpoints = self._supervisor.endpoints()
        if not endpoints:
            raise WorkerUnavailableError("no ready workers in the fleet")
        candidates = [e for e in endpoints if e[0] not in avoid] or endpoints
        with self._lock:
            return min(
                candidates,
                key=lambda e: (self._pending.get(e[0], 0.0), self._routed.get(e[0], 0)),
            )

    # -- connection pool ------------------------------------------------

    def _sweep_pools(self) -> None:
        """Drop pools whose endpoint vanished (respawn, drain, death)."""
        version = self._supervisor.version
        with self._lock:
            if version == self._pools_version:
                return
            live = {(w, p) for w, _, p in self._supervisor.endpoints()}
            stale = [key for key in self._pools if key not in live]
            discarded = [client for key in stale for client in self._pools.pop(key)]
            self._pools_version = version
        for client in discarded:
            client.close()

    def _checkout(self, worker: int, host: str, port: int) -> QueryClient:
        with self._lock:
            pool = self._pools.get((worker, port))
            if pool:
                return pool.pop()
        return QueryClient(host, port, timeout=self._request_timeout)

    def _checkin(self, worker: int, port: int, client: QueryClient) -> None:
        with self._lock:
            if not self._closed:
                pool = self._pools.setdefault((worker, port), [])
                if len(pool) < self._pool_per_worker:
                    pool.append(client)
                    return
        client.close()

    # ------------------------------------------------------------------
    # The failover loop
    # ------------------------------------------------------------------

    def _invoke(self, call: Any, cost_key: str) -> Any:
        """Run ``call(client)`` on the best worker, failing over on death.

        The pending-cost accounting is strictly scoped: the cost is added
        before the call and removed in ``finally`` — a request that dies
        with its worker releases its slot on the spot, so the dead
        worker's score cannot poison placement for the retry.
        """
        if self._closed:
            raise RuntimeError("FleetRouter is closed")
        policy = self._retry
        started = time.monotonic()
        attempt = 0
        avoid: Set[int] = set()
        last: Optional[BaseException] = None
        cost = self._cost_of(cost_key)
        while True:
            attempt += 1
            self._sweep_pools()
            try:
                worker, host, port = self._pick(avoid)
            except WorkerUnavailableError as exc:
                last = exc
            else:
                with self._lock:
                    self._pending[worker] = self._pending.get(worker, 0.0) + cost
                    self._routed[worker] = self._routed.get(worker, 0) + 1
                client = None
                try:
                    client = self._checkout(worker, host, port)
                    before = time.monotonic()
                    result = call(client)
                    self._observe(cost_key, time.monotonic() - before)
                    self._checkin(worker, port, client)
                    return result
                except BaseException as exc:  # noqa: BLE001 — classified below
                    if client is not None:
                        client.close()
                    if isinstance(exc, (ConnectionError, OSError)):
                        # The worker, not the request: condemn and avoid.
                        self._supervisor.report_failure(worker)
                        avoid.add(worker)
                        last = WorkerUnavailableError(
                            f"worker {worker} failed: {exc}", worker=worker
                        )
                        last.__cause__ = exc
                    elif policy.retryable(exc):
                        last = exc  # transient structured code: re-route
                    else:
                        raise
                finally:
                    with self._lock:
                        remaining = self._pending.get(worker, 0.0) - cost
                        if remaining > 1e-9:
                            self._pending[worker] = remaining
                        else:
                            self._pending.pop(worker, None)
            with self._lock:
                self._failovers += 1
            if attempt >= policy.max_attempts:
                break
            delay = policy.delay_for(attempt, self._rng)
            if (
                policy.max_elapsed is not None
                and time.monotonic() - started + delay > policy.max_elapsed
            ):
                break
            time.sleep(delay)
        raise FleetDrainedError(
            f"fleet request failed after {attempt} attempt(s): {last}",
            attempts=attempt,
            last_error=last,
        ) from last

    # ------------------------------------------------------------------
    # The facade: generic run/run_batch, typed one-line wrappers
    # ------------------------------------------------------------------

    def run(
        self,
        operation: Operation,
        database: str,
        *,
        deadline: Optional[float] = None,
    ) -> Any:
        """Run one :class:`~repro.operations.Operation` somewhere healthy."""
        operation.validate()
        key = f"{operation.kind}:{query_text(operation.query)}"
        return self._invoke(
            lambda client: client.run(operation, database, deadline=deadline), key
        )

    def run_batch(
        self,
        operations: Sequence[Operation],
        database: str,
        *,
        deadline: Optional[float] = None,
    ) -> List[Any]:
        """Run a batch as one wire request (whole batch fails over together)."""
        operations = list(operations)
        for operation in operations:
            operation.validate()
        key = "batch:" + "|".join(
            f"{op.kind}:{query_text(op.query)}" for op in operations
        )
        return self._invoke(
            lambda client: client.run_batch(operations, database, deadline=deadline),
            key,
        )

    def execute(
        self, query: Any, database: str, *, deadline: Optional[float] = None
    ) -> Relation:
        return self.run(Operation.execute(query), database, deadline=deadline)

    def decide(
        self, query: Any, database: str, *, deadline: Optional[float] = None
    ) -> bool:
        return self.run(Operation.decide(query), database, deadline=deadline)

    def count(
        self, query: Any, database: str, *, deadline: Optional[float] = None
    ) -> int:
        return self.run(Operation.count(query), database, deadline=deadline)

    def explain(
        self, query: Any, database: str, *, deadline: Optional[float] = None
    ) -> str:
        return self.run(Operation.explain(query), database, deadline=deadline)

    def register_database(self, name: str, database: Any) -> List[int]:
        """Install *database* fleet-wide (broadcast + replay on respawn)."""
        return self._supervisor.register_database(name, database)

    # ------------------------------------------------------------------

    def pending(self) -> Dict[int, float]:
        """Cost-weighted in-flight load per worker (empty when idle)."""
        with self._lock:
            return dict(self._pending)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "routed": dict(self._routed),
                "pending": dict(self._pending),
                "failovers": self._failovers,
                "ledger_shapes": len(self._ledger),
                "pooled_connections": sum(len(p) for p in self._pools.values()),
            }

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            discarded = [c for pool in self._pools.values() for c in pool]
            self._pools.clear()
        for client in discarded:
            client.close()

    def __enter__(self) -> "FleetRouter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class AsyncFleetRouter:
    """Asyncio facade over :class:`FleetRouter`.

    Each call runs the blocking router on a worker thread
    (``asyncio.to_thread``), so an event-loop application can fan many
    concurrent requests across the fleet — the sync router underneath is
    thread-safe and does the placement/failover work.
    """

    def __init__(self, router: FleetRouter) -> None:
        self._router = router

    async def run(
        self,
        operation: Operation,
        database: str,
        *,
        deadline: Optional[float] = None,
    ) -> Any:
        return await asyncio.to_thread(
            self._router.run, operation, database, deadline=deadline
        )

    async def run_batch(
        self,
        operations: Sequence[Operation],
        database: str,
        *,
        deadline: Optional[float] = None,
    ) -> List[Any]:
        return await asyncio.to_thread(
            self._router.run_batch, operations, database, deadline=deadline
        )

    async def execute(
        self, query: Any, database: str, *, deadline: Optional[float] = None
    ) -> Relation:
        return await self.run(Operation.execute(query), database, deadline=deadline)

    async def decide(
        self, query: Any, database: str, *, deadline: Optional[float] = None
    ) -> bool:
        return await self.run(Operation.decide(query), database, deadline=deadline)

    async def count(
        self, query: Any, database: str, *, deadline: Optional[float] = None
    ) -> int:
        return await self.run(Operation.count(query), database, deadline=deadline)

    async def register_database(self, name: str, database: Any) -> List[int]:
        return await asyncio.to_thread(
            self._router.register_database, name, database
        )

    async def aclose(self) -> None:
        await asyncio.to_thread(self._router.close)

    async def __aenter__(self) -> "AsyncFleetRouter":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()


__all__ = ["AsyncFleetRouter", "DEFAULT_COST", "DEFAULT_FLEET_RETRY", "FleetRouter"]
