"""The generic backtracking evaluator — the paper's n^O(q) algorithm.

This is the baseline every other engine is measured against: it enumerates
instantiations of the query variables atom by atom, probing hash indexes on
the positions already bound.  Its worst-case running time is n^Θ(q) (with q
the query size), which is precisely the data-complexity-polynomial /
parametrically-intractable behaviour the paper analyzes.  It supports the
full conjunctive fragment with inequalities and comparisons, so it doubles
as the ground-truth oracle for the Theorem 2 and Theorem 3 machinery.

Kernel notes: the search is *compiled* per query.  Variables map to integer
slots in a flat valuation list, and each atom (in join order) becomes a
static probe plan: which index to probe (built once per search, cached on
the relation), how to assemble the probe key (constants and already-bound
slots are known statically), which positions bind new slots, and which
intra-atom repeated-variable equalities to check.  The enumeration itself is
an iterative depth-first loop — no per-node dicts, no recursive generator
chains, no isinstance checks in the hot path.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import InvalidOperationError, QueryError
from ..operations import DECIDE, EXECUTE, Operation
from ..query.atoms import Atom, Comparison, Inequality
from ..query.conjunctive import ConjunctiveQuery
from ..query.terms import Constant, Variable
from ..relational.columns import values_equal
from ..relational.database import Database
from ..relational.index import IndexPool
from ..relational.relation import Relation
from ..resilience.token import check_cancelled
from .instantiation import answers_relation

#: One compiled probe plan per atom:
#: (rows_for(valuation) -> bucket, intra-atom equality (pos, pos) pairs,
#:  (pos, slot) new-variable bindings, constraint checks ready at this depth)
_Plan = Tuple[
    Callable[[List[Any]], Sequence[Tuple]],
    Tuple[Tuple[int, int], ...],
    Tuple[Tuple[int, int], ...],
    Tuple[Callable[[List[Any]], bool], ...],
]


class NaiveEvaluator:
    """Backtracking join evaluation with index probing and constraint checks.

    The evaluator is stateless between queries apart from its
    :class:`IndexPool`, which pins the database relations it has probed;
    the index buckets themselves are cached on the (immutable) relations,
    so they are shared across evaluators and with the relational algebra.
    """

    def __init__(self) -> None:
        self._pool = IndexPool()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def evaluate(
        self,
        query: ConjunctiveQuery,
        database: Database,
        atom_order: Optional[Sequence[int]] = None,
    ) -> Relation:
        """Compute Q(d) as a relation of head tuples.

        *atom_order* optionally overrides the built-in greedy join order
        with an explicit permutation of atom indices — the adaptive
        engine's planner supplies its cost-based order this way.
        """
        return answers_relation(
            query.head_terms,
            self.satisfying_assignments(query, database, atom_order=atom_order),
        )

    def satisfying_assignments(
        self,
        query: ConjunctiveQuery,
        database: Database,
        atom_order: Optional[Sequence[int]] = None,
    ) -> Relation:
        """All satisfying instantiations, one column per query variable."""
        return Relation.from_rows(
            tuple(v.name for v in query.variables()),
            self._search(query, database, find_all=True, atom_order=atom_order),
        )

    def decide(
        self,
        query: ConjunctiveQuery,
        database: Database,
        atom_order: Optional[Sequence[int]] = None,
    ) -> bool:
        """Is Q(d) nonempty?  Stops at the first satisfying instantiation."""
        for _ in self._search(query, database, find_all=False, atom_order=atom_order):
            return True
        return False

    def run(self, operation: Operation, database: Database) -> Any:
        """The generic operation entry point (``execute``/``decide`` only).

        The naive engine has no planner, explainer, or counting pass, so
        the remaining kinds raise a typed
        :class:`~repro.errors.InvalidOperationError` instead of silently
        approximating them.  A forced ``evaluator`` option is ignored —
        this engine *is* the naive evaluator.
        """
        if operation.kind == EXECUTE:
            return self.evaluate(operation.query, database)
        if operation.kind == DECIDE:
            return self.decide(operation.query, database)
        raise InvalidOperationError(
            f"NaiveEvaluator cannot run {operation.kind!r} operations; "
            "only execute/decide"
        )

    def run_batch(
        self, operations: Sequence[Operation], database: Database
    ) -> List[Any]:
        """Sequential member-by-member batch (no lifting machinery here);
        exists so the naive engine satisfies the generic operation API
        that :class:`~repro.evaluation.datalog_eval.DatalogEvaluator`
        requires of its rule engines."""
        return [self.run(operation, database) for operation in operations]

    def contains(
        self, query: ConjunctiveQuery, database: Database, candidate: Sequence[Any]
    ) -> bool:
        """The decision problem: is *candidate* ∈ Q(d)?

        Implements the paper's reduction of the membership question to an
        emptiness question by substituting the candidate's constants.
        """
        try:
            decided = query.decision_instance(candidate)
        except QueryError:
            return False  # candidate statically incompatible with the head
        return self.decide(decided, database)

    # ------------------------------------------------------------------
    # Plan compilation
    # ------------------------------------------------------------------

    def _compile(
        self,
        query: ConjunctiveQuery,
        database: Database,
        atom_order: Optional[Sequence[int]] = None,
    ) -> Tuple[List[_Plan], int]:
        """Compile the per-atom probe plans for one search."""
        variables = query.variables()
        slot_of: Dict[Variable, int] = {v: i for i, v in enumerate(variables)}
        if atom_order is None:
            order = self._atom_order(query)
        else:
            order = list(atom_order)
            if sorted(order) != list(range(len(query.atoms))):
                raise QueryError(
                    f"atom_order {order!r} is not a permutation of "
                    f"0..{len(query.atoms) - 1}"
                )
        atoms = [query.atoms[i] for i in order]

        ineq_checks = _constraint_schedule(query.inequalities, atoms, slot_of)
        comp_checks = _constraint_schedule(query.comparisons, atoms, slot_of)

        plans: List[_Plan] = []
        bound_slots: set = set()
        for depth, atom in enumerate(atoms):
            relation = database[atom.relation]
            # Static shape of the probe at this depth: which positions carry
            # constants, which carry variables bound at earlier depths, which
            # bind new slots, and which repeat a variable first seen in this
            # very atom (intra-atom equality).
            key_positions: List[int] = []
            key_parts: List[Tuple[bool, Any]] = []  # (is_slot, slot-or-value)
            bindings: List[Tuple[int, int]] = []
            equalities: List[Tuple[int, int]] = []
            first_seen: Dict[Variable, int] = {}
            for position, term in enumerate(atom.terms):
                if isinstance(term, Constant):
                    key_positions.append(position)
                    key_parts.append((False, term.value))
                elif slot_of[term] in bound_slots:
                    key_positions.append(position)
                    key_parts.append((True, slot_of[term]))
                elif term in first_seen:
                    equalities.append((first_seen[term], position))
                else:
                    first_seen[term] = position
                    bindings.append((position, slot_of[term]))
            self._pool.index(relation, key_positions)  # pin + warm the cache
            buckets = relation._index(tuple(key_positions))
            rows_for = _make_probe(buckets, key_parts, relation)
            checks = tuple(
                ineq_checks.get(depth, ()) + comp_checks.get(depth, ())
            )
            plans.append((rows_for, tuple(equalities), tuple(bindings), checks))
            bound_slots.update(slot_of[v] for v in atom.variables())
        return plans, len(variables)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def _search(
        self,
        query: ConjunctiveQuery,
        database: Database,
        find_all: bool,
        atom_order: Optional[Sequence[int]] = None,
    ) -> Iterator[Tuple]:
        plans, num_slots = self._compile(query, database, atom_order=atom_order)
        valuation: List[Any] = [None] * num_slots

        if not plans:
            # No atoms: the empty instantiation satisfies vacuously.
            yield tuple(valuation)
            return

        last = len(plans) - 1
        iters: List[Iterator[Tuple]] = [iter(())] * len(plans)
        iters[0] = iter(plans[0][0](valuation))
        depth = 0
        steps = 0
        while depth >= 0:
            # The backtracking search has no level boundaries to check at,
            # so poll the cancel token on a stride: n^k nodes is exactly
            # the blow-up deadlines exist for.
            steps += 1
            if not steps & 2047:
                check_cancelled()
            rows_for, equalities, bindings, checks = plans[depth]
            descended = False
            for row in iters[depth]:
                if equalities:
                    ok = True
                    for a, b in equalities:
                        if not values_equal(row[a], row[b]):
                            ok = False
                            break
                    if not ok:
                        continue
                for position, slot in bindings:
                    valuation[slot] = row[position]
                if checks:
                    ok = True
                    for check in checks:
                        if not check(valuation):
                            ok = False
                            break
                    if not ok:
                        continue
                if depth == last:
                    yield tuple(valuation)
                else:
                    depth += 1
                    iters[depth] = iter(plans[depth][0](valuation))
                    descended = True
                    break
            if not descended:
                depth -= 1

    @staticmethod
    def _atom_order(query: ConjunctiveQuery) -> List[int]:
        """Greedy connectivity order: prefer atoms sharing bound variables.

        Starting from the atom with the most constants, repeatedly pick the
        unprocessed atom with the largest overlap with already-bound
        variables (ties: fewer new variables).  Keeps the backtracking tree
        narrow on chain- and star-shaped queries.
        """
        remaining = set(range(len(query.atoms)))
        bound: set = set()
        order: List[int] = []

        def constants_of(i: int) -> int:
            return sum(
                1 for t in query.atoms[i].terms if isinstance(t, Constant)
            )

        while remaining:
            def score(i: int) -> Tuple[int, int, int]:
                atom_vars = set(query.atoms[i].variables())
                return (
                    len(atom_vars & bound),
                    constants_of(i),
                    -len(atom_vars - bound),
                )

            best = max(sorted(remaining), key=score)
            remaining.remove(best)
            order.append(best)
            bound |= set(query.atoms[best].variables())
        return order


def _make_probe(
    buckets: Dict[Any, Sequence[Tuple]],
    key_parts: List[Tuple[bool, Any]],
    relation: Relation,
) -> Callable[[List[Any]], Sequence[Tuple]]:
    """Compile ``valuation -> rows matching the probe key`` for one atom.

    Key conventions follow :meth:`Relation._index`: raw values for a single
    indexed position, tuples otherwise.  Fully static keys (all constants)
    are resolved to their bucket at compile time.
    """
    empty: Tuple = ()
    if not key_parts:
        all_rows = buckets.get((), empty)
        return lambda valuation: all_rows
    if len(key_parts) == 1:
        is_slot, payload = key_parts[0]
        if not is_slot:
            bucket = buckets.get(payload, empty)
            return lambda valuation: bucket
        return lambda valuation: buckets.get(valuation[payload], empty)
    if all(not is_slot for is_slot, _ in key_parts):
        bucket = buckets.get(tuple(v for _, v in key_parts), empty)
        return lambda valuation: bucket
    parts = tuple(key_parts)
    return lambda valuation: buckets.get(
        tuple(valuation[p] if is_slot else p for is_slot, p in parts), empty
    )


def _constraint_schedule(
    constraints, atoms: List[Atom], slot_of: Dict[Variable, int]
) -> Dict[int, Tuple]:
    """Map each atom depth to the constraint checks that become ready there.

    A constraint is *ready* at the first depth where all of its variables
    are bound; the returned closures read the flat slot valuation.
    """
    first_bound: Dict[Variable, int] = {}
    for depth, atom in enumerate(atoms):
        for v in atom.variables():
            first_bound.setdefault(v, depth)

    schedule: Dict[int, List] = {}
    for constraint in constraints:
        depths = [first_bound[v] for v in constraint.variables()]
        ready_at = max(depths) if depths else 0
        schedule.setdefault(ready_at, []).append(_make_check(constraint, slot_of))
    return {depth: tuple(checks) for depth, checks in schedule.items()}


def _make_check(constraint, slot_of: Dict[Variable, int]):
    """Compile one ≠ / < / ≤ constraint into a slot-valuation closure."""

    def reader(term):
        if isinstance(term, Constant):
            value = term.value
            return lambda valuation: value
        slot = slot_of[term]
        return lambda valuation: valuation[slot]

    left = reader(constraint.left)
    right = reader(constraint.right)

    if isinstance(constraint, Inequality):
        def check(valuation, _l=left, _r=right):
            return not values_equal(_l(valuation), _r(valuation))
        return check
    if isinstance(constraint, Comparison):
        strict = constraint.strict

        def check(valuation, _l=left, _r=right, _s=strict):
            lv = _l(valuation)
            rv = _r(valuation)
            return lv < rv if _s else lv <= rv
        return check
    raise QueryError(f"unknown constraint type: {constraint!r}")
