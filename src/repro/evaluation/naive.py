"""The generic backtracking evaluator — the paper's n^O(q) algorithm.

This is the baseline every other engine is measured against: it enumerates
instantiations of the query variables atom by atom, probing hash indexes on
the positions already bound.  Its worst-case running time is n^Θ(q) (with q
the query size), which is precisely the data-complexity-polynomial /
parametrically-intractable behaviour the paper analyzes.  It supports the
full conjunctive fragment with inequalities and comparisons, so it doubles
as the ground-truth oracle for the Theorem 2 and Theorem 3 machinery.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import QueryError
from ..query.atoms import Atom, Comparison, Inequality
from ..query.conjunctive import ConjunctiveQuery
from ..query.terms import Constant, Variable
from ..relational.database import Database
from ..relational.index import IndexPool
from ..relational.relation import Relation
from .instantiation import answers_relation


class NaiveEvaluator:
    """Backtracking join evaluation with index probing and constraint checks.

    The evaluator is stateless between queries apart from its
    :class:`IndexPool`, which caches hash indexes across calls on the same
    database relations.
    """

    def __init__(self) -> None:
        self._pool = IndexPool()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def evaluate(self, query: ConjunctiveQuery, database: Database) -> Relation:
        """Compute Q(d) as a relation of head tuples."""
        assignments = Relation(
            tuple(v.name for v in query.variables()),
            self._search(query, database, find_all=True),
        )
        return answers_relation(query.head_terms, assignments)

    def satisfying_assignments(
        self, query: ConjunctiveQuery, database: Database
    ) -> Relation:
        """All satisfying instantiations, one column per query variable."""
        return Relation(
            tuple(v.name for v in query.variables()),
            self._search(query, database, find_all=True),
        )

    def decide(self, query: ConjunctiveQuery, database: Database) -> bool:
        """Is Q(d) nonempty?  Stops at the first satisfying instantiation."""
        for _ in self._search(query, database, find_all=False):
            return True
        return False

    def contains(
        self, query: ConjunctiveQuery, database: Database, candidate: Sequence[Any]
    ) -> bool:
        """The decision problem: is *candidate* ∈ Q(d)?

        Implements the paper's reduction of the membership question to an
        emptiness question by substituting the candidate's constants.
        """
        try:
            decided = query.decision_instance(candidate)
        except QueryError:
            return False  # candidate statically incompatible with the head
        return self.decide(decided, database)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def _search(
        self, query: ConjunctiveQuery, database: Database, find_all: bool
    ) -> Iterator[Tuple]:
        variables = query.variables()
        order = self._atom_order(query)
        atoms = [query.atoms[i] for i in order]
        relations = [database[a.relation] for a in atoms]

        # Constraint checks fire as soon as their variables are all bound.
        ineq_checks = _constraint_schedule(query.inequalities, atoms)
        comp_checks = _constraint_schedule(query.comparisons, atoms)

        valuation: Dict[Variable, Any] = {}
        yield from self._extend(
            0, atoms, relations, ineq_checks, comp_checks, valuation,
            variables, find_all,
        )

    def _extend(
        self,
        depth: int,
        atoms: List[Atom],
        relations: List[Relation],
        ineq_checks: Dict[int, List],
        comp_checks: Dict[int, List],
        valuation: Dict[Variable, Any],
        variables: Tuple[Variable, ...],
        find_all: bool,
    ) -> Iterator[Tuple]:
        if depth == len(atoms):
            yield tuple(valuation[v] for v in variables)
            return
        atom = atoms[depth]
        relation = relations[depth]
        bound_positions: List[int] = []
        bound_values: List[Any] = []
        for position, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                bound_positions.append(position)
                bound_values.append(term.value)
            elif term in valuation:
                bound_positions.append(position)
                bound_values.append(valuation[term])
        index = self._pool.index(relation, bound_positions)
        for row in index.lookup(bound_values):
            added: List[Variable] = []
            consistent = True
            for position, term in enumerate(atom.terms):
                if isinstance(term, Constant):
                    continue
                bound = valuation.get(term, _UNSET)
                if bound is _UNSET:
                    valuation[term] = row[position]
                    added.append(term)
                elif bound != row[position]:
                    consistent = False
                    break
            if consistent:
                consistent = all(
                    check(valuation)
                    for check in ineq_checks.get(depth, ())
                ) and all(
                    check(valuation)
                    for check in comp_checks.get(depth, ())
                )
            if consistent:
                yield from self._extend(
                    depth + 1, atoms, relations, ineq_checks, comp_checks,
                    valuation, variables, find_all,
                )
            for variable in added:
                del valuation[variable]

    @staticmethod
    def _atom_order(query: ConjunctiveQuery) -> List[int]:
        """Greedy connectivity order: prefer atoms sharing bound variables.

        Starting from the atom with the most constants, repeatedly pick the
        unprocessed atom with the largest overlap with already-bound
        variables (ties: fewer new variables).  Keeps the backtracking tree
        narrow on chain- and star-shaped queries.
        """
        remaining = set(range(len(query.atoms)))
        bound: set = set()
        order: List[int] = []

        def constants_of(i: int) -> int:
            return sum(
                1 for t in query.atoms[i].terms if isinstance(t, Constant)
            )

        while remaining:
            def score(i: int) -> Tuple[int, int, int]:
                atom_vars = set(query.atoms[i].variables())
                return (
                    len(atom_vars & bound),
                    constants_of(i),
                    -len(atom_vars - bound),
                )

            best = max(sorted(remaining), key=score)
            remaining.remove(best)
            order.append(best)
            bound |= set(query.atoms[best].variables())
        return order


_UNSET = object()


def _constraint_schedule(constraints, atoms: List[Atom]) -> Dict[int, List]:
    """Map each atom depth to the constraint checks that become ready there.

    A constraint is *ready* at the first depth where all of its variables
    are bound; the returned closures read the current valuation.
    """
    first_bound: Dict[Variable, int] = {}
    for depth, atom in enumerate(atoms):
        for v in atom.variables():
            first_bound.setdefault(v, depth)

    schedule: Dict[int, List] = {}
    for constraint in constraints:
        depths = [first_bound[v] for v in constraint.variables()]
        ready_at = max(depths) if depths else 0
        schedule.setdefault(ready_at, []).append(_make_check(constraint))
    return schedule


def _make_check(constraint):
    left = constraint.left
    right = constraint.right

    def value_of(term, valuation):
        if isinstance(term, Constant):
            return term.value
        return valuation[term]

    if isinstance(constraint, Inequality):
        def check(valuation, _l=left, _r=right):
            return value_of(_l, valuation) != value_of(_r, valuation)
        return check
    if isinstance(constraint, Comparison):
        strict = constraint.strict

        def check(valuation, _l=left, _r=right, _s=strict):
            lv = value_of(_l, valuation)
            rv = value_of(_r, valuation)
            return lv < rv if _s else lv <= rv
        return check
    raise QueryError(f"unknown constraint type: {constraint!r}")
