"""Instantiations (valuations) and per-atom candidate relations.

The bridge between query syntax and the relational algebra: an atom
``R(t1, ..., tr)`` over database relation R induces the relation

    S = π_U σ_F (R)

over the atom's distinct variables U, where the selection F keeps tuples
that (i) agree with the atom's constants and (ii) are equal wherever the
atom repeats a variable — exactly the paper's S_j construction used by
Theorem 1's upper bounds, the Yannakakis evaluator, and Algorithms 1–2.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence, Tuple

from ..errors import QueryError, SchemaError
from ..query.atoms import Atom
from ..query.terms import Constant, Term, Variable
from ..relational.attributes import check_attribute_names
from ..relational.columns import values_equal
from ..relational.database import Database
from ..relational.relation import Relation


def atom_candidate_relation(atom: Atom, relation: Relation) -> Relation:
    """The relation S = π_U σ_F (R) of candidate variable bindings for *atom*.

    The result's attributes are the atom's distinct variable names in
    first-occurrence order; each row is one binding of those variables that
    maps the atom into *relation*.  For a variable-free atom the result is
    the nullary TRUE/FALSE relation.
    """
    if relation.arity != atom.arity:
        raise SchemaError(
            f"atom {atom!r} has arity {atom.arity}, relation has {relation.arity}"
        )
    variables = atom.variables()
    var_names = tuple(v.name for v in variables)
    first_position: Dict[Variable, int] = {}
    constant_checks: List[Tuple[int, Any]] = []
    equality_checks: List[Tuple[int, int]] = []
    for position, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            constant_checks.append((position, term.value))
        else:
            seen_at = first_position.get(term)
            if seen_at is None:
                first_position[term] = position
            else:
                equality_checks.append((seen_at, position))
    out_positions = tuple(first_position[v] for v in variables)

    if not constant_checks and not equality_checks:
        # All-distinct-variables atom (out_positions is the identity, since
        # variables are listed in first-occurrence order): the rows pass
        # through untouched — only the column names change, so the
        # relation's cached indexes stay valid and are shared.
        out = Relation._from_frozen(check_attribute_names(var_names), relation.rows)
        return out._share_indexes_with(relation)

    rows = set()
    for row in relation.rows:
        if any(not values_equal(row[p], value) for p, value in constant_checks):
            continue
        if any(not values_equal(row[a], row[b]) for a, b in equality_checks):
            continue
        rows.add(tuple(row[p] for p in out_positions))
    return Relation.from_rows(var_names, rows)


def candidate_relations(
    atoms: Sequence[Atom], database: Database
) -> List[Relation]:
    """S_j for every atom, in order (the initialization of all algorithms)."""
    return [atom_candidate_relation(a, database[a.relation]) for a in atoms]


def matches_atom(atom: Atom, valuation: Mapping[Variable, Any], row: Tuple) -> bool:
    """Does *row* extend *valuation* consistently for *atom*?  (Test helper.)"""
    if len(row) != atom.arity:
        return False
    local: Dict[Variable, Any] = dict(valuation)
    for term, value in zip(atom.terms, row):
        if isinstance(term, Constant):
            if not values_equal(term.value, value):
                return False
        else:
            bound = local.get(term, _UNSET)
            if bound is _UNSET:
                local[term] = value
            elif not values_equal(bound, value):
                return False
    return True


_UNSET = object()


def apply_to_head(
    head_terms: Sequence[Term], valuation: Mapping[Variable, Any]
) -> Tuple:
    """The output tuple τ(t0) for a satisfying valuation τ."""
    out = []
    for term in head_terms:
        if isinstance(term, Constant):
            out.append(term.value)
        else:
            try:
                out.append(valuation[term])
            except KeyError:
                raise QueryError(f"valuation misses head variable {term!r}") from None
    return tuple(out)


def answers_relation(
    head_terms: Sequence[Term], assignments: Relation
) -> Relation:
    """Project a relation of satisfying assignments onto the head tuple.

    *assignments* has one attribute per variable (named by the variable);
    the result has one column per head term, with synthetic names ``o0..``
    since head terms may repeat variables or be constants.
    """
    names = tuple(f"o{i}" for i in range(len(head_terms)))
    attribute_index = {name: i for i, name in enumerate(assignments.attributes)}
    # Compile each head term once: column position for a variable, or the
    # constant value itself (position None) — then build all rows in one
    # comprehension instead of re-dispatching per term per row.
    sources = []
    for term in head_terms:
        if isinstance(term, Constant):
            sources.append((None, term.value))
        else:
            position = attribute_index.get(term.name)
            if position is None:
                raise QueryError(
                    f"assignments relation misses head variable {term!r}"
                )
            sources.append((position, None))
    if not sources:
        rows = frozenset([()]) if assignments.rows else frozenset()
        return Relation._from_frozen(names, rows)
    rows = frozenset(
        tuple(value if position is None else row[position]
              for position, value in sources)
        for row in assignments.rows
    )
    return Relation._from_frozen(names, rows)
