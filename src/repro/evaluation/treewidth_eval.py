"""Bounded-treewidth conjunctive-query evaluation (extension).

The acyclic case (treewidth-style width 1 over the join tree) is the
paper's tractable island; the literature that followed generalized it to
bounded (hyper)treewidth.  This engine makes that generalization concrete:

1. build a tree decomposition of the query's primal graph (heuristic);
2. materialize one *bag relation* per bag — the join of the candidate
   relations of the atoms assigned to the bag, completed with per-variable
   candidate columns for bag variables no assigned atom covers (size
   ≤ n^(w+1) for width w);
3. the bags with the decomposition tree form an *acyclic* query, which the
   Yannakakis engine finishes in polynomial combined complexity.

For an acyclic input query the width-1 decomposition makes this coincide
with plain Yannakakis up to constants.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from ..errors import QueryError
from ..query.atoms import Atom
from ..query.conjunctive import ConjunctiveQuery
from ..query.terms import Variable
from ..relational.database import Database
from ..relational.relation import Relation
from ..hypergraph.treewidth import (
    TreeDecomposition,
    tree_decomposition,
    verify_decomposition,
)
from .instantiation import atom_candidate_relation
from .yannakakis import YannakakisEvaluator


class TreewidthEvaluator:
    """CQ evaluation through a tree decomposition of the primal graph."""

    def __init__(self, heuristic: str = "min_fill") -> None:
        self._heuristic = heuristic
        self._yannakakis = YannakakisEvaluator()

    def decomposition(self, query: ConjunctiveQuery) -> TreeDecomposition:
        """The decomposition this engine would use for *query*."""
        hypergraph = query.hypergraph()
        decomposition = tree_decomposition(hypergraph, heuristic=self._heuristic)
        if not verify_decomposition(hypergraph, decomposition):
            raise QueryError("internal error: invalid tree decomposition")
        return decomposition

    def width(self, query: ConjunctiveQuery) -> int:
        """The width of the heuristic decomposition (≥ true treewidth)."""
        return self.decomposition(query).width

    def evaluate(
        self,
        query: ConjunctiveQuery,
        database: Database,
        decomposition: Optional[TreeDecomposition] = None,
    ) -> Relation:
        """Q(d), in time n^O(w) · poly(output) for decomposition width w.

        *decomposition* optionally supplies a precomputed (trusted) tree
        decomposition of the primal graph — the adaptive engine's cached
        plans carry one, skipping the elimination-order heuristic.
        """
        bag_query, bag_database = self._bag_instance(
            query, database, decomposition
        )
        return self._yannakakis.evaluate(bag_query, bag_database)

    def decide(
        self,
        query: ConjunctiveQuery,
        database: Database,
        decomposition: Optional[TreeDecomposition] = None,
    ) -> bool:
        """Is Q(d) nonempty?"""
        bag_query, bag_database = self._bag_instance(
            query, database, decomposition
        )
        return self._yannakakis.decide(bag_query, bag_database)

    # ------------------------------------------------------------------

    def _bag_instance(
        self,
        query: ConjunctiveQuery,
        database: Database,
        decomposition: Optional[TreeDecomposition] = None,
    ) -> Tuple[ConjunctiveQuery, Database]:
        if query.inequalities or query.comparisons:
            raise QueryError(
                "TreewidthEvaluator handles purely relational queries"
            )
        if decomposition is None:
            decomposition = self.decomposition(query)
        bags = decomposition.bags

        # Assign each atom to the first bag containing all its variables.
        assigned: Dict[int, List[Atom]] = {i: [] for i in range(len(bags))}
        for atom in query.atoms:
            names = frozenset(v.name for v in atom.variables())
            for i, bag in enumerate(bags):
                if names <= {v.name for v in bag}:
                    assigned[i].append(atom)
                    break
            else:
                raise QueryError(f"no bag covers atom {atom!r}")

        # Sound per-variable candidate sets: intersect the value columns of
        # every atom mentioning the variable.
        candidates: Dict[str, FrozenSet] = {}
        for atom in query.atoms:
            rel = atom_candidate_relation(atom, database[atom.relation])
            for v in atom.variables():
                column = rel.column(v.name)
                if v.name in candidates:
                    candidates[v.name] = candidates[v.name] & column
                else:
                    candidates[v.name] = column

        bag_relations: Dict[str, Relation] = {}
        bag_atoms: List[Atom] = []
        for i, bag in enumerate(bags):
            bag_vars = tuple(sorted(v.name for v in bag))
            current: Optional[Relation] = None
            for atom in assigned[i]:
                piece = atom_candidate_relation(atom, database[atom.relation])
                current = piece if current is None else current.natural_join(piece)
            covered = set(current.attributes) if current is not None else set()
            for name in bag_vars:
                if name in covered:
                    continue
                column = Relation.from_rows((name,), ((v,) for v in candidates.get(name, frozenset())))
                current = column if current is None else current.natural_join(column)
            assert current is not None
            bag_name = f"BAG_{i}"
            bag_relations[bag_name] = current.project(bag_vars)
            bag_atoms.append(Atom(bag_name, tuple(Variable(n) for n in bag_vars)))

        bag_query = ConjunctiveQuery(
            query.head_terms, bag_atoms, head_name=query.head_name
        )
        return bag_query, Database(bag_relations, domain=database.domain())
