"""Counting answers to acyclic conjunctive queries without the join.

Yannakakis extends from evaluation to counting: annotate every tuple of
every candidate relation with a multiplicity (initially 1), run the
upward half of the reducer (root-side state is all the count reads, so
the top-down pass is skipped), then fold the tree bottom-up multiplying
each parent tuple's
annotation by the *sum* of the annotations of the child tuples it joins
with (upward-dangling child tuples sum under keys no parent tuple looks
up, so they cost a little work but never distort a count).  After the
fold, the root annotations sum to the number of
edge-consistent ways to pick one tuple per node — and by the join tree's
running-intersection property those choices are in bijection with the
satisfying assignments.  Total cost: the reducer passes plus one linear
fold — never the (possibly exponentially larger) join.

That bijection counts *assignments*, so it equals ``len(execute(Q).rows)``
(distinct head tuples) only when distinct assignments cannot collide on
the head.  Two shapes guarantee that:

* **full queries** (no existential variables): every body variable appears
  in the head, so distinct assignments give distinct head tuples — the
  annotated fold applies as-is (``count-full``);
* **head-covered queries** (head variables inside one atom): rooted at
  that atom, one upward pass leaves its relation globally consistent, so
  its distinct head projections *are* the answers — count the distinct
  keys of one cached index, no fold needed (``count-covered``).

Everything else — acyclic with an uncovered projection (high quantified
star size), cyclic cores, constraint atoms — is #P-hard in general
(Chen–Mengel's trichotomy); the engine falls back to evaluation plus a
cardinality read for those.  Classification lives in
:func:`repro.engine.analysis.counting_mode`.

Sharding merges associatively: hash-partitioning a relation on the
counted key positions means no key spans two shards, so per-shard
distinct counts (covered) and per-shard annotation sums (full) add up
exactly.  :class:`CountResult` exposes the partials so tests can pin the
merge.
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..errors import QueryError
from ..hypergraph.join_tree import JoinTree
from ..query.conjunctive import ConjunctiveQuery
from ..query.terms import Constant, Variable
from ..relational.database import Database
from ..relational.relation import Relation
from ..resilience.token import check_cancelled
from .instantiation import candidate_relations
from .yannakakis import YannakakisEvaluator


class CountResult(NamedTuple):
    """A count plus the per-shard partials that merged into it."""

    total: int
    mode: str
    partials: Tuple[int, ...]


def _head_variable_names(query: ConjunctiveQuery) -> Tuple[str, ...]:
    """Distinct head variable names, first-occurrence order."""
    seen: List[str] = []
    for term in query.head_terms:
        if isinstance(term, Variable) and term.name not in seen:
            seen.append(term.name)
    return tuple(seen)


class CountingYannakakisEvaluator:
    """Multiplicity-annotated Yannakakis counting for acyclic queries.

    Composes with any reducer exposing the sequential evaluator's
    ``_prepare``/``full_reduction``/``reduce_bottom_up`` surface — the
    engine passes its shard-parallel evaluator when the plan says the
    inputs are large, so the reduction phase shards for free and only the
    linear fold stays sequential.
    """

    def __init__(self, reducer: Optional[YannakakisEvaluator] = None) -> None:
        self._reducer = reducer or YannakakisEvaluator()

    # ------------------------------------------------------------------

    def count(
        self,
        query: ConjunctiveQuery,
        database: Database,
        join_tree: Optional[JoinTree] = None,
        mode: Optional[str] = None,
        shard_count: int = 1,
    ) -> CountResult:
        """``|Q(d)|`` for the fast counting modes.

        *mode* is the precomputed :func:`~repro.engine.analysis.counting_mode`
        (recomputed here when absent); raises :class:`QueryError` on the
        hard modes — the caller owns the evaluate-then-count fallback.
        *shard_count* > 1 splits the final count into hash-disjoint
        partials merged by addition (see :class:`CountResult`).
        """
        from ..engine.analysis import (  # local import: engine imports us
            ACYCLIC,
            COUNT_BOOLEAN,
            COUNT_COVERED,
            COUNT_FULL,
            FAST_COUNTING_MODES,
            counting_mode,
            covering_atom,
        )

        if mode is None:
            structural = ACYCLIC if query.is_acyclic() else "cyclic"
            if query.inequalities or query.comparisons:
                structural = "constrained"
            mode = counting_mode(query, structural)
        if mode not in FAST_COUNTING_MODES:
            raise QueryError(
                f"counting mode {mode!r} is not served by the annotated "
                "pass; evaluate and count the materialized answers instead"
            )

        if mode == COUNT_BOOLEAN:
            nonempty = (
                self._reducer.reduce_bottom_up(query, database, join_tree)
                is not None
            )
            return CountResult(int(nonempty), mode, (int(nonempty),))

        prepared = self._reducer._prepare(query, database, join_tree)
        if prepared is None:
            return CountResult(0, mode, (0,) * max(1, shard_count))
        relations, tree = prepared

        # Both fast modes read only root-side state, so the upward half of
        # the reducer suffices (the covered mode re-roots at the covering
        # atom first): half the semijoin passes of a full reduction, which
        # is what keeps count(Q) within decide(Q)'s wall-time envelope.
        if mode == COUNT_COVERED:
            node = covering_atom(query)
            assert node is not None
            if node != tree.root:
                tree = tree.rooted_at(node)
            reduced = self._reducer.bottom_up_reduction(relations, tree)
            return self._count_covered(query, reduced[node], shard_count)

        reduced = self._reducer.bottom_up_reduction(relations, tree)
        if reduced[tree.root].is_empty():
            return CountResult(0, mode, (0,) * max(1, shard_count))
        annotations = self._annotate(reduced, tree)
        partials = _hash_partials(annotations, shard_count)
        return CountResult(sum(partials), COUNT_FULL, partials)

    def grouped_count(
        self,
        query: ConjunctiveQuery,
        database: Database,
        group_by: Sequence[str],
        join_tree: Optional[JoinTree] = None,
        mode: Optional[str] = None,
    ) -> Optional[Relation]:
        """Per-group answer counts over the *group_by* head variables.

        Returns a relation over ``group_by + (count column,)`` — one row
        per occupied group — or ``None`` when no fast path applies (the
        caller then materializes and uses :func:`grouped_count_reference`).
        """
        from ..engine.analysis import (
            COUNT_COVERED,
            COUNT_FULL,
            counting_mode,
            covering_atom,
        )

        group = tuple(group_by)
        head_names = _head_variable_names(query)
        unknown = [name for name in group if name not in head_names]
        if unknown:
            raise QueryError(
                f"group_by names {unknown} are not head variables of {query!r}"
            )
        if mode is None:
            structural = "acyclic" if query.is_acyclic() else "cyclic"
            if query.inequalities or query.comparisons:
                structural = "constrained"
            mode = counting_mode(query, structural)
        if mode not in (COUNT_COVERED, COUNT_FULL):
            return None

        prepared = self._reducer._prepare(query, database, join_tree)
        if prepared is None:
            return _group_relation(group, {})
        relations, tree = prepared

        if mode == COUNT_COVERED:
            node = covering_atom(query)
            assert node is not None
            if node != tree.root:
                tree = tree.rooted_at(node)
            reduced = self._reducer.bottom_up_reduction(relations, tree)
            distinct = self._distinct_head(query, reduced[node])
            counts: Dict[Tuple, int] = {}
            positions = tuple(head_names.index(name) for name in group)
            for row in distinct:
                key = tuple(row[p] for p in positions)
                counts[key] = counts.get(key, 0) + 1
            return _group_relation(group, counts)

        # count-full: group the fold's root annotations.  The root must
        # cover the grouping variables; re-root at a covering atom when
        # one exists, otherwise give up (caller materializes).
        root = None
        group_set = set(group)
        for index, atom in enumerate(query.atoms):
            if group_set <= {v.name for v in atom.variables()}:
                root = index
                break
        if root is None:
            return None
        if root != tree.root:
            tree = tree.rooted_at(root)
        reduced = self._reducer.bottom_up_reduction(relations, tree)
        if reduced[tree.root].is_empty():
            return _group_relation(group, {})
        annotations = self._annotate(reduced, tree)
        root_rel = reduced[tree.root]
        positions = tuple(root_rel.attributes.index(name) for name in group)
        counts = {}
        for row, annotation in annotations.items():
            key = tuple(row[p] for p in positions)
            counts[key] = counts.get(key, 0) + annotation
        return _group_relation(group, counts)

    # ------------------------------------------------------------------

    def _count_covered(
        self, query: ConjunctiveQuery, reduced: Relation, shard_count: int
    ) -> CountResult:
        """Distinct-key count of the covering atom's reduced relation.

        With ``shard_count > 1`` the relation is hash-partitioned on the
        head positions first: no key spans two shards, so the per-shard
        distinct counts sum exactly — the same merge the sharded executor
        performs across workers.
        """
        from ..engine.analysis import COUNT_COVERED

        head_names = _head_variable_names(query)
        positions = tuple(reduced.attributes.index(name) for name in head_names)
        if shard_count <= 1 or reduced.cardinality == 0:
            total = len(reduced._index(positions)) if reduced.cardinality else 0
            return CountResult(total, COUNT_COVERED, (total,))
        shards = reduced._partition(positions, shard_count)
        partials = tuple(len(shard._index(positions)) for shard in shards)
        return CountResult(sum(partials), COUNT_COVERED, partials)

    def _distinct_head(
        self, query: ConjunctiveQuery, reduced: Relation
    ) -> Tuple[Tuple, ...]:
        """Distinct head-variable assignments from a covering relation."""
        head_names = _head_variable_names(query)
        positions = tuple(reduced.attributes.index(name) for name in head_names)
        seen = set()
        for row in reduced.rows:
            seen.add(tuple(row[p] for p in positions))
        return tuple(seen)

    def _annotate(
        self, reduced: Dict[int, Relation], tree: JoinTree
    ) -> Dict[Tuple, int]:
        """Root annotations of the bottom-up multiplicity fold.

        ``result[row]`` = the number of edge-consistent ways to extend the
        root tuple *row* with one tuple per node of the tree.  Interior
        nodes never materialize per-row annotations: each folds its
        children's *upward sums* (annotation totals per shared join key)
        in one pass over its rows, emitting its own upward sums as it
        goes, and leaves read bucket sizes straight off the index the
        reducer's semijoins already built — same positions, same key
        convention, so the fold costs one warm pass per node.
        """
        upward: Dict[int, Dict[Any, int]] = {}
        children_of: Dict[Optional[int], List[int]] = {}
        order = tree.bottom_up_order()
        for node in order:
            children_of.setdefault(tree.parent(node), []).append(node)
        for node in order:
            rel = reduced[node]
            lookups = []
            for kid in children_of.get(node, ()):
                kid_attrs = set(reduced[kid].attributes)
                shared = tuple(a for a in rel.attributes if a in kid_attrs)
                key = Relation._key_getter(
                    tuple(rel.attributes.index(a) for a in shared)
                )
                lookups.append((key, upward.pop(kid)))
            parent = tree.parent(node)
            if parent is None:
                return {
                    row: self._fold_row(row, lookups) for row in rel.rows
                }
            check_cancelled()
            rel_attrs = set(rel.attributes)
            positions_up = tuple(
                rel.attributes.index(a)
                for a in reduced[parent].attributes
                if a in rel_attrs
            )
            buckets = rel._index(positions_up)  # warm: the reducer built it
            if not lookups:
                upward[node] = {
                    key: len(rows) for key, rows in buckets.items()
                }
                continue
            sums_out: Dict[Any, int] = {}
            if len(lookups) == 1:
                (child_key, child_sums) = lookups[0]
                get = child_sums.get
                for key, rows in buckets.items():
                    total = 0
                    for row in rows:
                        total += get(child_key(row), 0)
                    if total:
                        sums_out[key] = total
            else:
                for key, rows in buckets.items():
                    total = 0
                    for row in rows:
                        total += self._fold_row(row, lookups)
                    if total:
                        sums_out[key] = total
            upward[node] = sums_out
        raise QueryError("join tree has no root")  # pragma: no cover

    @staticmethod
    def _fold_row(row: Tuple, lookups: List[Tuple[Any, Dict[Any, int]]]) -> int:
        """One tuple's annotation: the product of its children's sums."""
        total = 1
        for key, sums in lookups:
            total *= sums.get(key(row), 0)
            if not total:
                break
        return total


# ----------------------------------------------------------------------
# Module helpers shared by the engine's fallback paths and the tests
# ----------------------------------------------------------------------

#: Name of the synthetic count column in grouped-count relations.
COUNT_ATTRIBUTE = "count"


def _count_attribute(group: Tuple[str, ...]) -> str:
    # A head variable literally named "count" must not collide.
    name = COUNT_ATTRIBUTE
    while name in group:
        name = "_" + name
    return name


def _group_relation(group: Tuple[str, ...], counts: Dict[Tuple, int]) -> Relation:
    attributes = group + (_count_attribute(group),)
    rows = frozenset(key + (n,) for key, n in counts.items())
    return Relation._from_frozen(attributes, rows)


def _hash_partials(
    annotations: Dict[Tuple, int], shard_count: int
) -> Tuple[int, ...]:
    """Split an annotation sum into hash-disjoint per-shard partials."""
    if shard_count <= 1:
        return (sum(annotations.values()),)
    partials = [0] * shard_count
    for row, annotation in annotations.items():
        partials[hash(row) % shard_count] += annotation
    return tuple(partials)


def grouped_count_reference(
    query: ConjunctiveQuery, answers: Relation, group_by: Sequence[str]
) -> Relation:
    """Naive group-by over a materialized answer relation.

    The oracle for the fast grouped paths, and the engine's fallback for
    the hard counting modes.  *answers* is ``execute``'s output (synthetic
    ``o0..`` columns); each *group_by* name is resolved to the first head
    position holding that variable.
    """
    group = tuple(group_by)
    positions = []
    for name in group:
        position = next(
            (
                i
                for i, term in enumerate(query.head_terms)
                if isinstance(term, Variable) and term.name == name
            ),
            None,
        )
        if position is None:
            raise QueryError(
                f"group_by name {name!r} is not a head variable of {query!r}"
            )
        positions.append(position)
    counts: Dict[Tuple, int] = {}
    for row in answers.rows:
        key = tuple(row[p] for p in positions)
        counts[key] = counts.get(key, 0) + 1
    return _group_relation(group, counts)


def head_domain_size(query: ConjunctiveQuery, database: Database) -> int:
    """``∏_v |domain(v)|`` over the distinct head variables.

    ``domain(v)`` is the intersection, over the atoms mentioning ``v``, of
    that column of the atom's candidate relation — the tightest
    per-variable bound the inputs support.  ``forall`` holds iff the
    answer count reaches this product: every candidate head tuple is an
    answer (vacuously true when some domain is empty).
    """
    candidates = candidate_relations(query.atoms, database)
    domains: Dict[str, Any] = {}
    head_names = set(_head_variable_names(query))
    for atom, candidate in zip(query.atoms, candidates):
        for variable in atom.variables():
            name = variable.name
            if name not in head_names:
                continue
            column = candidate.column(name)
            previous = domains.get(name)
            domains[name] = column if previous is None else previous & column
    total = 1
    for name in sorted(head_names):
        total *= len(domains.get(name, ()))
    return total


__all__ = [
    "COUNT_ATTRIBUTE",
    "CountResult",
    "CountingYannakakisEvaluator",
    "grouped_count_reference",
    "head_domain_size",
]
