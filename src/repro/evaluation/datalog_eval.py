"""Bottom-up Datalog evaluation: naive and semi-naive fixpoints.

§4 of the paper analyzes exactly this algorithm: "use the ordinary
bottom-up evaluation algorithm for Datalog that applies repeatedly the
rules until a fixpoint is reached.  If the maximum arity is r, then every
IDB relation has at most n^r tuples and a fixpoint is reached in n^r
stages.  In each stage we need to compute for each rule a conjunctive query
with at most v variables."

Both engines delegate each rule application to a conjunctive-query
evaluation, so the W[1] membership argument (each stage = polynomially many
W[1] oracle calls) is directly visible in the code; the oracle-counting
variant lives in :mod:`repro.reductions.datalog_fixed_arity`.

Rule bodies are routed through the adaptive :class:`~repro.engine.QueryEngine`
by default: rule shapes repeat across fixpoint iterations (the
parameterized-query pattern), so every iteration after the first hits the
plan cache, acyclic rule bodies run through Yannakakis (sharded when
large), and cyclic ones get the cost-based join order — instead of every
stage re-running uniform backtracking.  The semi-naive fixpoint goes one
step further: each round's delta-instantiated rule bodies all see one
shared snapshot, so they are handed to the engine as ONE
``run_batch`` call and same-shape delta rules ride the N-wide batch
lifting.  Pass ``rule_engine=`` to pin the
legacy :class:`NaiveEvaluator` (``benchmarks/bench_datalog.py`` does, to
isolate the fixpoint strategies and the §4 per-stage bound).  Reuse one
evaluator across programs to keep its plan cache warm, and ``close()`` it
(or use it as a context manager) when done — a default-constructed
evaluator owns its engine's worker pool.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from ..errors import QueryError
from ..operations import EXECUTE, operations_of
from ..query.atoms import Atom
from ..query.conjunctive import ConjunctiveQuery
from ..query.datalog import DatalogProgram, Rule
from ..relational.database import Database
from ..relational.relation import Relation
from ..relational.schema import RelationSchema
from .naive import NaiveEvaluator


class DatalogEvaluator:
    """Naive and semi-naive bottom-up fixpoint computation.

    Parameters
    ----------
    rule_engine:
        Optional evaluator for the per-rule conjunctive queries.  A
        :class:`NaiveEvaluator` (legacy behavior), a
        :class:`~repro.engine.QueryEngine`, or anything exposing their
        evaluation signature.  Defaults to a fresh adaptive
        :class:`~repro.engine.QueryEngine` so repeated rule shapes hit the
        plan cache across iterations.
    """

    def __init__(
        self, rule_engine: Optional[Union[NaiveEvaluator, "object"]] = None
    ) -> None:
        self._owns_engine = rule_engine is None
        if rule_engine is None:
            # Local import: repro.engine itself evaluates through this
            # package, so the dependency must stay call-time.  The default
            # engine is single-worker (serial pool, no executor is ever
            # spawned) so the many existing construct-per-call sites leak
            # nothing; inject a QueryEngine to opt into worker fan-out.
            from ..engine import QueryEngine

            rule_engine = QueryEngine(max_workers=1)
        self._engine = rule_engine
        self._evaluate_body = getattr(
            rule_engine, "execute", None
        ) or rule_engine.evaluate
        # The N-wide batch entry point is *required*: the semi-naive
        # fixpoint hands every round's rule-body queries over in ONE call,
        # so same-shape delta rules ride the engine's batch lifting —
        # always through the generic operation API (``run_batch`` over
        # EXECUTE operations).  Feature-detecting it with a silent
        # sequential fallback (the pre-operation-API legacy) would mask a
        # misconfigured rule engine; both supported engines
        # (:class:`~repro.engine.QueryEngine`, :class:`NaiveEvaluator`)
        # provide it, so anything without one is a wiring error.
        run_batch = getattr(rule_engine, "run_batch", None)
        if run_batch is None:
            raise QueryError(
                f"rule_engine {type(rule_engine).__name__} has no run_batch; "
                "the fixpoint requires the generic operation API "
                "(QueryEngine and NaiveEvaluator both provide it)"
            )
        self._evaluate_batch = lambda queries, database: run_batch(
            operations_of(EXECUTE, queries), database
        )

    @property
    def rule_engine(self):
        """The engine evaluating rule-body conjunctive queries."""
        return self._engine

    def close(self) -> None:
        """Release the engine's worker pool, if this evaluator created it.

        Injected engines are the caller's to manage.  Idempotent; the
        evaluator stays usable (a closed pool restarts lazily).
        """
        if self._owns_engine:
            closer = getattr(self._engine, "close", None)
            if closer is not None:
                closer()

    def __enter__(self) -> "DatalogEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def evaluate(
        self, program: DatalogProgram, database: Database, method: str = "seminaive"
    ) -> Relation:
        """The goal relation at the least fixpoint."""
        idbs = self.fixpoint(program, database, method=method)
        return idbs[program.goal]

    def decide(
        self, program: DatalogProgram, database: Database, method: str = "seminaive"
    ) -> bool:
        """Is the goal relation nonempty at the fixpoint?"""
        return not self.evaluate(program, database, method=method).is_empty()

    def fixpoint(
        self, program: DatalogProgram, database: Database, method: str = "seminaive"
    ) -> Dict[str, Relation]:
        """All IDB relations at the least fixpoint."""
        if method == "naive":
            return self._naive(program, database)
        if method == "seminaive":
            return self._seminaive(program, database)
        raise QueryError(f"unknown Datalog method {method!r}")

    # ------------------------------------------------------------------

    def _initial_idbs(self, program: DatalogProgram) -> Dict[str, Relation]:
        out: Dict[str, Relation] = {}
        for name in program.idb_names():
            arity = program.arity(name)
            schema = RelationSchema(name, arity)
            out[name] = Relation.from_rows(schema.default_attributes())
        return out

    @staticmethod
    def _with_idbs(database: Database, idbs: Dict[str, Relation]) -> Database:
        merged = database.relations()
        merged.update(idbs)
        return Database(merged)

    @staticmethod
    def _rule_query(rule: Rule) -> ConjunctiveQuery:
        """The body CQ of *rule*, headed by the rule's head terms."""
        return ConjunctiveQuery(
            rule.head.terms, rule.body, head_name=rule.head.relation
        )

    @staticmethod
    def _rehead(rule: Rule, derived: Relation) -> Relation:
        """Project a body result onto the head relation's schema.

        Same rows, new column names: reuse the frozen row set (and its
        cached indexes) instead of re-validating every tuple.
        """
        schema = RelationSchema(rule.head.relation, rule.head.arity)
        return Relation._from_frozen(
            schema.default_attributes(), derived.rows
        )._share_indexes_with(derived)

    def _apply_rule(self, rule: Rule, database: Database) -> Relation:
        """One rule application: evaluate the body CQ, project to the head."""
        return self._rehead(rule, self._evaluate_body(self._rule_query(rule), database))

    def _evaluate_bodies(
        self, queries: Sequence[ConjunctiveQuery], database: Database
    ) -> List[Relation]:
        """Evaluate one round's rule bodies, batched past one query.

        All queries see the SAME database snapshot (the fixpoint rounds
        are constructed that way), so handing them to ``run_batch``
        is semantics-preserving and lets the engine group same-shape
        members under one plan and lift them N-wide.
        """
        if len(queries) > 1:
            return list(self._evaluate_batch(list(queries), database))
        return [self._evaluate_body(query, database) for query in queries]

    def _naive(
        self, program: DatalogProgram, database: Database
    ) -> Dict[str, Relation]:
        idbs = self._initial_idbs(program)
        while True:
            current = self._with_idbs(database, idbs)
            changed = False
            new_idbs = dict(idbs)
            for rule in program.rules:
                derived = self._apply_rule(rule, current)
                merged = new_idbs[rule.head.relation].union(derived)
                if merged.cardinality != new_idbs[rule.head.relation].cardinality:
                    new_idbs[rule.head.relation] = merged
                    changed = True
            idbs = new_idbs
            if not changed:
                return idbs

    def _seminaive(
        self, program: DatalogProgram, database: Database
    ) -> Dict[str, Relation]:
        """Delta-driven evaluation: re-derive only from last-round facts.

        For each rule and each body position holding an IDB relation, one
        delta rule evaluates the body with that occurrence restricted to the
        last round's new tuples.  First round: plain naive application.
        """
        idbs = self._initial_idbs(program)
        current = self._with_idbs(database, idbs)
        # First round: plain naive application of every rule against the
        # empty IDBs — all bodies share one snapshot, so they go to the
        # engine as ONE batch.
        derived_all = self._evaluate_bodies(
            [self._rule_query(rule) for rule in program.rules], current
        )
        deltas: Dict[str, Relation] = {}
        for rule, derived in zip(program.rules, derived_all):
            derived = self._rehead(rule, derived)
            name = rule.head.relation
            fresh = derived.difference(idbs[name])
            idbs[name] = idbs[name].union(fresh)
            deltas[name] = deltas.get(name, fresh).union(fresh)

        idb_names = program.idb_names()
        while any(not d.is_empty() for d in deltas.values()):
            next_deltas: Dict[str, Relation] = {
                name: Relation.from_rows(idbs[name].attributes) for name in idb_names
            }
            snapshot = self._with_idbs(database, idbs)
            # ONE patched snapshot carrying every delta marker: each delta
            # rule references only its own ``__delta_*`` relation, so
            # sharing the database is semantics-preserving — and it is
            # what lets the engine's batch grouping (whose plan key spans
            # the database) lift same-shape delta bodies together.
            patched = snapshot
            for delta_name, delta in deltas.items():
                if not delta.is_empty():
                    patched = patched.with_relation(f"__delta_{delta_name}", delta)
            # Collect the round's delta-instantiated rule bodies: for each
            # rule and each body position holding an IDB with new tuples,
            # that occurrence is rebound to the delta via its marker name.
            pending: List[Rule] = []
            queries: List[ConjunctiveQuery] = []
            for rule in program.rules:
                for position, atom in enumerate(rule.body):
                    if atom.relation not in idb_names:
                        continue
                    delta = deltas.get(atom.relation)
                    if delta is None or delta.is_empty():
                        continue
                    renamed_body = list(rule.body)
                    renamed_body[position] = Atom(
                        f"__delta_{atom.relation}", atom.terms
                    )
                    pending.append(rule)
                    queries.append(
                        ConjunctiveQuery(
                            rule.head.terms,
                            renamed_body,
                            head_name=rule.head.relation,
                        )
                    )
            for rule, derived in zip(
                pending, self._evaluate_bodies(queries, patched)
            ):
                name = rule.head.relation
                schema_rel = Relation._from_frozen(
                    idbs[name].attributes, derived.rows
                )._share_indexes_with(derived)
                fresh = schema_rel.difference(idbs[name])
                if not fresh.is_empty():
                    next_deltas[name] = next_deltas[name].union(fresh)
            for name, fresh in next_deltas.items():
                idbs[name] = idbs[name].union(fresh)
            deltas = next_deltas
        return idbs
