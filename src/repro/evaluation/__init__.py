"""Evaluation engines for every query language in the library.

* :class:`NaiveEvaluator` — the generic n^O(q) backtracking algorithm
  (supports ≠ and < atoms; the ground-truth oracle).
* :class:`YannakakisEvaluator` — acyclic queries in polynomial combined
  complexity.
* :func:`parameter_v_transform` — Theorem 1's variable-set grouping.
* :class:`PositiveEvaluator`, :class:`FirstOrderEvaluator` — calculus
  fragments under active-domain semantics.
* :class:`DatalogEvaluator` — naive / semi-naive fixpoints.
* :class:`TreewidthEvaluator` — bounded-treewidth extension.
* :class:`CountingYannakakisEvaluator` — multiplicity-annotated counting
  on the tractable trichotomy islands.
"""

from .bounded_variable import group_relation_name, parameter_v_transform
from .counting import (
    CountingYannakakisEvaluator,
    CountResult,
    grouped_count_reference,
    head_domain_size,
)
from .datalog_eval import DatalogEvaluator
from .fo_eval import FirstOrderEvaluator
from .instantiation import (
    answers_relation,
    apply_to_head,
    atom_candidate_relation,
    candidate_relations,
    matches_atom,
)
from .naive import NaiveEvaluator
from .positive_eval import PositiveEvaluator
from .treewidth_eval import TreewidthEvaluator
from .yannakakis import YannakakisEvaluator

__all__ = [
    "CountResult",
    "CountingYannakakisEvaluator",
    "DatalogEvaluator",
    "FirstOrderEvaluator",
    "NaiveEvaluator",
    "PositiveEvaluator",
    "TreewidthEvaluator",
    "YannakakisEvaluator",
    "answers_relation",
    "apply_to_head",
    "atom_candidate_relation",
    "candidate_relations",
    "group_relation_name",
    "grouped_count_reference",
    "head_domain_size",
    "matches_atom",
    "parameter_v_transform",
]
