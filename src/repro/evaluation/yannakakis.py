"""Yannakakis' algorithm for acyclic conjunctive queries.

The classical polynomial-combined-complexity evaluation of acyclic joins
([18] in the paper; the basis of §5):

1. compute the candidate relation S_j = π_{U_j} σ_{F_j}(R_{i_j}) per atom;
2. build a join tree of the query hypergraph;
3. *full reducer*: a bottom-up then a top-down semijoin pass, after which
   the relations are globally consistent (every tuple participates in the
   join);
4. a final bottom-up join-and-project pass that assembles the projection of
   the join onto the output variables, with intermediates bounded by
   |input| · |output|.

The emptiness / decision variants stop after the bottom-up pass.  Queries
with inequality or comparison atoms are rejected here — that is exactly the
extension Theorem 2 (``repro.inequalities``) provides.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

from ..errors import NotAcyclicError, QueryError
from ..hypergraph.join_tree import JoinTree
from ..query.conjunctive import ConjunctiveQuery
from ..relational.database import Database
from ..relational.joins import JoinAlgorithm, hash_join
from ..relational.relation import Relation
from ..resilience.token import check_cancelled
from .instantiation import answers_relation, candidate_relations


class YannakakisEvaluator:
    """Acyclic-query evaluation in polynomial combined complexity."""

    def __init__(self, join_algorithm: JoinAlgorithm = hash_join) -> None:
        self._join = join_algorithm

    # ------------------------------------------------------------------

    def decide(
        self,
        query: ConjunctiveQuery,
        database: Database,
        join_tree: Optional[JoinTree] = None,
    ) -> bool:
        """Is Q(d) nonempty?  One bottom-up semijoin pass.

        *join_tree* optionally supplies a precomputed join tree of the
        query hypergraph (the adaptive engine's cached plans carry one),
        skipping the GYO reduction.
        """
        return self.reduce_bottom_up(query, database, join_tree) is not None

    def reduce_bottom_up(
        self,
        query: ConjunctiveQuery,
        database: Database,
        join_tree: Optional[JoinTree] = None,
        root: Optional[int] = None,
    ) -> Optional[Relation]:
        """The root's candidate relation after one bottom-up semijoin pass.

        Stops exactly where ``decide`` does — no top-down pass, no joins —
        but returns the reduced *root relation* instead of its emptiness:
        after the upward pass every surviving root tuple participates in a
        global match, so the survivors are the root-projected answers.
        *root* optionally re-roots the (possibly supplied) join tree first;
        the N-wide batch decision roots at the injected parameter atom
        and reads each member's decision off the surviving vectors.
        Returns ``None`` when the query is globally empty.
        """
        prepared = self._prepare(query, database, join_tree)
        if prepared is None:
            return None
        relations, tree = prepared
        if root is not None and root != tree.root:
            tree = tree.rooted_at(root)
        for node in tree.bottom_up_order():
            parent = tree.parent(node)
            if parent is None:
                continue
            # Per-node cancellation check-point: between semijoins no
            # external state is held, so aborting here is always safe.
            check_cancelled()
            relations[parent] = relations[parent].semijoin(relations[node])
            if relations[parent].is_empty():
                return None
        reduced = relations[tree.root]
        return None if reduced.is_empty() else reduced

    def contains(
        self, query: ConjunctiveQuery, database: Database, candidate: Sequence[Any]
    ) -> bool:
        """Decision problem candidate ∈ Q(d) via constant substitution."""
        try:
            decided = query.decision_instance(candidate)
        except QueryError:
            return False
        return self.decide(decided, database)

    def evaluate(
        self,
        query: ConjunctiveQuery,
        database: Database,
        join_tree: Optional[JoinTree] = None,
    ) -> Relation:
        """Q(d) in time polynomial in input + output (full Yannakakis)."""
        prepared = self._prepare(query, database, join_tree)
        head_names = tuple(v.name for v in query.head_variables())
        if prepared is None:
            return answers_relation(query.head_terms, Relation.from_rows(head_names))
        relations, tree = prepared

        relations = self.full_reduction(relations, tree)
        if relations[tree.root].is_empty():
            return answers_relation(query.head_terms, Relation.from_rows(head_names))

        # Upward join-and-project pass (paper's Algorithm 2, step 2, in the
        # plain setting): carry shared attributes plus output attributes.
        # With the default hash join the projection is pushed *into* the
        # join (Relation._join_keep), so the child's wide intermediate is
        # never materialized; a custom join algorithm gets the explicit
        # project-then-join equivalent.
        fused = self._join is hash_join
        head_set = set(head_names)
        for node in tree.bottom_up_order():
            parent = tree.parent(node)
            if parent is None:
                continue
            check_cancelled()
            parent_vars = {v for v in relations[parent].attributes}
            keep = tuple(
                a
                for a in relations[node].attributes
                if a in parent_vars or a in head_set
            )
            if fused:
                relations[parent] = relations[parent]._join_keep(
                    relations[node], keep
                )
            else:
                relations[parent] = self._join(
                    relations[parent], relations[node].project(keep)
                )

        answer_vars = relations[tree.root].project(
            tuple(a for a in relations[tree.root].attributes if a in head_set)
        ).project(head_names)
        return answers_relation(query.head_terms, answer_vars)

    # ------------------------------------------------------------------

    def bottom_up_reduction(
        self, relations: Dict[int, Relation], tree: JoinTree
    ) -> Dict[int, Relation]:
        """The upward half of the full reducer — one semijoin pass.

        After it, every relation is reduced against its entire *subtree*
        (leaves first), so the root is globally consistent while non-root
        relations may keep upward-dangling tuples.  Enough for any reader
        that only consumes root-side state — the counting fold reads root
        annotations and the covered count re-roots at the covering atom —
        at half the passes of :meth:`full_reduction`.
        """
        reduced = dict(relations)
        for node in tree.bottom_up_order():
            parent = tree.parent(node)
            if parent is None:
                continue
            check_cancelled()
            reduced[parent] = reduced[parent].semijoin(reduced[node])
        return reduced

    def full_reduction(
        self, relations: Dict[int, Relation], tree: JoinTree
    ) -> Dict[int, Relation]:
        """Semijoin full reducer: bottom-up then top-down pass.

        Returns a new mapping in which the relations are globally
        consistent: P_u = π_{attrs(P_u)}(P_1 ⋈ ... ⋈ P_s).
        """
        reduced = self.bottom_up_reduction(relations, tree)
        for node in tree.top_down_order():
            parent = tree.parent(node)
            if parent is None:
                continue
            check_cancelled()
            reduced[node] = reduced[node].semijoin(reduced[parent])
        return reduced

    # ------------------------------------------------------------------

    def _prepare(
        self,
        query: ConjunctiveQuery,
        database: Database,
        join_tree: Optional[JoinTree] = None,
    ) -> Optional[Tuple[Dict[int, Relation], JoinTree]]:
        """Candidate relations + join tree; None when trivially empty."""
        if query.inequalities or query.comparisons:
            raise QueryError(
                "YannakakisEvaluator handles purely relational acyclic "
                "queries; use repro.inequalities for queries with != atoms"
            )
        if join_tree is not None:
            tree = join_tree
        else:
            hypergraph = query.hypergraph()
            try:
                tree = JoinTree.from_hypergraph(hypergraph)
            except NotAcyclicError:
                raise
        candidates = candidate_relations(query.atoms, database)
        relations = {i: rel for i, rel in enumerate(candidates)}
        if any(rel.is_empty() for rel in relations.values()):
            return None
        return relations, tree
