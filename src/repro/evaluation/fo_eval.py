"""First-order query evaluation under active-domain semantics.

Evaluates arbitrary relational-calculus formulas bottom-up, mapping each
subformula to the relation of its satisfying valuations over its free
variables:

* ``¬φ``  → complement against domain^free(φ);
* ``∧``   → natural join;
* ``∨``   → union after domain-padding to the joint schema;
* ``∃x φ``→ projection;
* ``∀x φ``→ relational division by the domain column.

Quantifier *shadowing* (reusing a variable name beneath a quantifier that
already binds it) is handled naturally, because each subformula's relation
only mentions that subformula's free variables — this matters for the
Theorem 1 first-order reduction, which reuses two variable names at every
circuit level to keep v = k + 2.

The data complexity is n^O(v) — polynomial for a fixed query — matching the
AC0/LOGSPACE/P membership facts the paper cites; the point of Theorem 1(3)
is that the exponent's dependence on the query is likely unavoidable.
"""

from __future__ import annotations

from functools import reduce
from typing import Any, FrozenSet, List, Sequence, Tuple

from ..errors import QueryError
from ..query.first_order import (
    And,
    AtomFormula,
    Exists,
    FirstOrderQuery,
    Forall,
    Formula,
    Not,
    Or,
)
from ..relational.attributes import check_attribute_names
from ..relational.database import Database
from ..relational.relation import Relation
from .instantiation import answers_relation, atom_candidate_relation


class FirstOrderEvaluator:
    """Bottom-up active-domain evaluation of first-order queries."""

    def evaluate(self, query: FirstOrderQuery, database: Database) -> Relation:
        """Q(d) as a relation of head tuples."""
        domain = database.domain()
        result = self._eval(query.formula, database, domain)
        head_names = tuple(v.name for v in query.head_variables())
        return answers_relation(query.head_terms, result.project(head_names))

    def decide(self, query: FirstOrderQuery, database: Database) -> bool:
        """Truth of a Boolean query / nonemptiness of an open one."""
        return not self.evaluate(query, database).is_empty()

    def contains(
        self, query: FirstOrderQuery, database: Database, candidate: Sequence[Any]
    ) -> bool:
        """Decision problem candidate ∈ Q(d)."""
        try:
            decided = query.decision_instance(candidate)
        except QueryError:
            return False
        return self.decide(decided, database)

    def holds(self, formula: Formula, database: Database) -> bool:
        """Truth of a sentence (no free variables)."""
        if formula.free_variables():
            raise QueryError("holds() expects a sentence")
        return not self._eval(formula, database, database.domain()).is_empty()

    # ------------------------------------------------------------------

    def _eval(
        self, formula: Formula, database: Database, domain: FrozenSet[Any]
    ) -> Relation:
        if isinstance(formula, AtomFormula):
            return atom_candidate_relation(
                formula.atom, database[formula.atom.relation]
            )
        if isinstance(formula, Not):
            inner = self._eval(formula.operand, database, domain)
            universe = self._universe(inner.attributes, domain)
            return universe.difference(inner)
        if isinstance(formula, And):
            parts = [self._eval(c, database, domain) for c in formula.children]
            parts.sort(key=len)
            return reduce(Relation.natural_join, parts)
        if isinstance(formula, Or):
            parts = [self._eval(c, database, domain) for c in formula.children]
            target = sorted(set().union(*(set(p.attributes) for p in parts)))
            padded = [self._pad(p, tuple(target), domain) for p in parts]
            return reduce(Relation.union, padded)
        if isinstance(formula, Exists):
            inner = self._eval(formula.operand, database, domain)
            keep = tuple(a for a in inner.attributes if a != formula.variable.name)
            return inner.project(keep)
        if isinstance(formula, Forall):
            inner = self._eval(formula.operand, database, domain)
            name = formula.variable.name
            if name not in inner.attributes:
                # Vacuous quantification: ∀x φ ≡ φ when x is not free in φ
                # (the domain is nonempty whenever there is data; over an
                # empty domain every universal holds, represented the same
                # way because inner is then empty over no attributes).
                return inner
            from ..relational.algebra import divide

            domain_column = Relation.from_rows((name,), ((value,) for value in domain))
            return divide(inner, domain_column)
        raise QueryError(f"unknown formula node: {formula!r}")

    @staticmethod
    def _universe(attributes: Tuple[str, ...], domain: FrozenSet[Any]) -> Relation:
        """domain^attributes as a relation (the complement's universe)."""
        rows: List[Tuple[Any, ...]] = [()]
        for _ in attributes:
            rows = [row + (value,) for row in rows for value in domain]
        return Relation._from_frozen(attributes, frozenset(rows))

    @staticmethod
    def _pad(
        relation: Relation, target: Sequence[str], domain: FrozenSet[Any]
    ) -> Relation:
        missing = tuple(a for a in target if a not in set(relation.attributes))
        out = relation
        domain_rows = frozenset((value,) for value in domain)
        for attribute in missing:
            domain_column = Relation._from_frozen(
                check_attribute_names((attribute,)), domain_rows
            )
            out = out.natural_join(domain_column)
        return out.project(tuple(target))
