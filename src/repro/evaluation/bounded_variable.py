"""The Theorem 1 parameter-v transformation (grouping atoms by variable set).

For the W[1] upper bound under the number-of-variables parameter, the paper
transforms a conjunctive query Q and database d into an equivalent pair
(Q', d') in which Q' has at most one atom per nonempty *variable set*
S ⊆ vars(Q) — hence at most 2^v atoms — so the parameter-q machinery
applies.  For each such S, the new relation R_S is the intersection over
the atoms a with variable set S of a's candidate relation P_a.

The transformation preserves the set of satisfying instantiations exactly,
so it supports full evaluation, not only the Boolean decision.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from ..errors import QueryError
from ..query.atoms import Atom
from ..query.conjunctive import ConjunctiveQuery
from ..query.terms import Variable
from ..relational.database import Database
from ..relational.relation import Relation
from .instantiation import atom_candidate_relation


def group_relation_name(variables: Tuple[Variable, ...]) -> str:
    """Deterministic name for the grouped relation R_S."""
    return "GRP_" + "_".join(v.name for v in variables)


def parameter_v_transform(
    query: ConjunctiveQuery, database: Database
) -> Tuple[ConjunctiveQuery, Database]:
    """Return (Q', d') with |atoms(Q')| ≤ 2^v and identical satisfying sets.

    Q' keeps the original head; its body has one atom ``R_S(x_{i1}...x_{ir})``
    per distinct nonempty variable set S of Q's atoms (canonical variable
    order: sorted by name), where R_S is the intersection of the candidate
    relations of the atoms in A_S.  Variable-free atoms contribute a 0-ary
    relation (TRUE/FALSE gate).
    """
    if query.inequalities or query.comparisons:
        raise QueryError(
            "parameter_v_transform is defined for purely relational queries"
        )

    groups: Dict[FrozenSet[Variable], List[Atom]] = {}
    for atom in query.atoms:
        groups.setdefault(atom.variable_set(), []).append(atom)

    new_atoms: List[Atom] = []
    new_relations: Dict[str, Relation] = {}
    for var_set, atoms in sorted(
        groups.items(), key=lambda kv: sorted(v.name for v in kv[0])
    ):
        ordered = tuple(sorted(var_set, key=lambda v: v.name))
        name = group_relation_name(ordered)
        attribute_order = tuple(v.name for v in ordered)
        grouped: Relation = None  # type: ignore[assignment]
        for atom in atoms:
            candidate = atom_candidate_relation(atom, database[atom.relation])
            aligned = candidate.project(attribute_order)
            grouped = aligned if grouped is None else grouped.intersection(aligned)
        new_relations[name] = grouped
        new_atoms.append(Atom(name, ordered))

    new_query = ConjunctiveQuery(
        query.head_terms, new_atoms, head_name=query.head_name
    )
    new_database = Database(new_relations, domain=database.domain())
    return new_query, new_database
