"""Direct evaluation of positive queries (∃, ∧, ∨).

Each subformula evaluates to a relation over its free variables:

* atoms via the candidate-relation construction;
* ∧ via natural join;
* ∨ via union after padding both sides to a common schema with
  active-domain columns (only needed when the disjuncts' free variables
  differ);
* ∃x via projecting x out.

An alternative engine expands the query to a union of conjunctive queries
first (:meth:`PositiveQuery.to_union_of_conjunctive_queries`) — the test
suite checks both agree.
"""

from __future__ import annotations

from functools import reduce
from typing import Any, FrozenSet, Sequence

from ..errors import QueryError
from ..query.first_order import And, AtomFormula, Exists, Formula, Or
from ..query.positive import PositiveQuery
from ..relational.attributes import check_attribute_names
from ..relational.database import Database
from ..relational.relation import Relation
from .instantiation import answers_relation, atom_candidate_relation
from .naive import NaiveEvaluator


class PositiveEvaluator:
    """Bottom-up relational evaluation of positive formulas."""

    def evaluate(self, query: PositiveQuery, database: Database) -> Relation:
        """Q(d) as a relation of head tuples."""
        domain = database.domain()
        result = self._eval(query.formula, database, domain)
        head_names = tuple(v.name for v in query.head_variables())
        return answers_relation(query.head_terms, result.project(head_names))

    def decide(self, query: PositiveQuery, database: Database) -> bool:
        """Is Q(d) nonempty?  (Boolean queries: is the sentence true?)"""
        return not self.evaluate(query, database).is_empty()

    def contains(
        self, query: PositiveQuery, database: Database, candidate: Sequence[Any]
    ) -> bool:
        """Decision problem candidate ∈ Q(d)."""
        try:
            decided = query.decision_instance(candidate)
        except QueryError:
            return False
        return self.decide(decided, database)

    def evaluate_via_union_of_cqs(
        self, query: PositiveQuery, database: Database
    ) -> Relation:
        """Alternative engine: DNF-expand and union the conjunctive answers.

        This is the executable form of the Theorem 1(2) parameter-q upper
        bound: exponentially many (in q) conjunctive queries, each solved by
        the generic engine.
        """
        naive = NaiveEvaluator()
        pieces = [
            naive.evaluate(cq, database)
            for cq in query.to_union_of_conjunctive_queries()
        ]
        return reduce(Relation.union, pieces)

    # ------------------------------------------------------------------

    def _eval(
        self, formula: Formula, database: Database, domain: FrozenSet[Any]
    ) -> Relation:
        if isinstance(formula, AtomFormula):
            return atom_candidate_relation(
                formula.atom, database[formula.atom.relation]
            )
        if isinstance(formula, And):
            parts = [self._eval(c, database, domain) for c in formula.children]
            parts.sort(key=len)
            return reduce(Relation.natural_join, parts)
        if isinstance(formula, Or):
            parts = [self._eval(c, database, domain) for c in formula.children]
            target = sorted(set().union(*(set(p.attributes) for p in parts)))
            padded = [self._pad(p, tuple(target), domain) for p in parts]
            return reduce(Relation.union, padded)
        if isinstance(formula, Exists):
            inner = self._eval(formula.operand, database, domain)
            keep = tuple(
                a for a in inner.attributes if a != formula.variable.name
            )
            return inner.project(keep)
        raise QueryError(f"not a positive formula node: {formula!r}")

    @staticmethod
    def _pad(
        relation: Relation, target: Sequence[str], domain: FrozenSet[Any]
    ) -> Relation:
        """Extend *relation* to schema *target* via active-domain columns."""
        missing = tuple(a for a in target if a not in set(relation.attributes))
        out = relation
        rows = frozenset((value,) for value in domain)
        for attribute in missing:
            domain_column = Relation._from_frozen(
                check_attribute_names((attribute,)), rows
            )
            out = out.natural_join(domain_column)
        return out.project(tuple(target))
