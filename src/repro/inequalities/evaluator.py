"""The Theorem 2 evaluator: acyclic conjunctive queries with ≠ atoms.

Combines the per-hash Algorithms 1–2 with a hash-family strategy:

* deterministic (default): a verified k-perfect family over the *relevant*
  domain — the values the V1 variables can actually take — giving exact
  answers in f(k)·q·m·n·polylog(n) time;
* Monte-Carlo: the paper's ⌈c·e^k⌉ random trials, one-sided error (a
  nonempty result is always right; emptiness is wrong with probability
  ≤ e^{-c}).

The evaluator degrades gracefully: with no I1 inequalities (k = 0) a single
trivial hash function makes this plain acyclic processing with the I2
selections folded in.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Optional, Sequence, Union

from ..errors import QueryError
from ..query.conjunctive import ConjunctiveQuery
from ..relational.database import Database
from ..relational.relation import Relation
from ..evaluation.instantiation import answers_relation
from .algorithm1 import HashedAcyclicEngine, build_engine
from .algorithm2 import evaluate_for_hash
from .hashing import (
    ExhaustiveHashFamily,
    GreedyPerfectHashFamily,
    RandomHashFamily,
)

FamilyStrategy = Union[
    RandomHashFamily, GreedyPerfectHashFamily, ExhaustiveHashFamily
]


class AcyclicInequalityEvaluator:
    """Fixed-parameter-tractable evaluation of acyclic ≠-queries."""

    def __init__(self, family: Optional[FamilyStrategy] = None) -> None:
        self.family: FamilyStrategy = family or GreedyPerfectHashFamily()

    # ------------------------------------------------------------------

    def decide(self, query: ConjunctiveQuery, database: Database) -> bool:
        """Is Q(d) nonempty?

        Exact with a perfect family; one-sided Monte-Carlo otherwise.
        """
        engine = build_engine(query, database)
        for h in self._functions(engine):
            if engine.nonempty_for(h):
                return True
        return False

    def contains(
        self, query: ConjunctiveQuery, database: Database, candidate: Sequence[Any]
    ) -> bool:
        """Decision problem candidate ∈ Q(d)."""
        try:
            decided = query.decision_instance(candidate)
        except QueryError:
            return False
        return self.decide(decided, database)

    def evaluate(self, query: ConjunctiveQuery, database: Database) -> Relation:
        """Q(d) = ⋃_h Q_h(d) over the hash family."""
        engine = build_engine(query, database)
        head_names = tuple(v.name for v in query.head_variables())
        result = answers_relation(query.head_terms, Relation.from_rows(head_names))
        for h in self._functions(engine):
            result = result.union(evaluate_for_hash(engine, h))
        return result

    # ------------------------------------------------------------------

    def relevant_domain(self, engine: HashedAcyclicEngine) -> FrozenSet[Any]:
        """Values the V1 variables can take — the hash family's domain.

        The union over atoms of the candidate-column values of V1
        variables; any satisfying instantiation draws its V1 values from
        here, so a family perfect on this set suffices (and it is usually
        far smaller than the full domain).
        """
        hashed_set = {v.name for v in engine.hashed_variables}
        values: set = set()
        for j, relation in engine.base_relations.items():
            for name in relation.attributes:
                if name in hashed_set:
                    values |= relation.column(name)
        return frozenset(values)

    def _functions(self, engine: HashedAcyclicEngine):
        k = len(engine.hashed_variables)
        if k == 0:
            yield {}
            return
        domain = self.relevant_domain(engine)
        yield from self.family.functions(domain, k)
