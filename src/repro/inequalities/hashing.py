"""Hash families for the color-coding step of Theorem 2.

The algorithm needs functions h : D → {1, ..., k} such that some h in the
family is injective on the (unknown) set of ≤ k values a satisfying
instantiation assigns to the V1 variables.

* :class:`RandomHashFamily` — the paper's Monte-Carlo bound: a satisfying
  instantiation is consistent with a fraction ≥ k!/k^k > e^{-k} of uniform
  random functions, so ⌈c·e^k⌉ trials fail with probability ≤ e^{-c}.
* :class:`GreedyPerfectHashFamily` — a deterministic k-perfect family for
  the *concrete finite* domain at hand: seeded random candidates are kept
  while they split not-yet-covered k-subsets, with a targeted-function
  fallback guaranteeing progress; coverage is verified, so the family is
  provably k-perfect for this domain.  Size ≈ e^k·k·ln|D| by the covering
  argument; construction cost is C(|D|, k) per round (fine at library
  scale — the asymptotically optimal splitter constructions of [3] would
  only change constants).
* :class:`ExhaustiveHashFamily` — all k^|D| functions; the test oracle for
  tiny domains.

Families are built over the *relevant* domain (the values V1 variables can
actually take), which the evaluator computes to keep |D| small.
"""

from __future__ import annotations

import math
import random
from itertools import combinations, product
from typing import Any, Dict, Iterable, Iterator, Sequence, Tuple

from ..errors import ReproError

HashFunction = Dict[Any, int]


class HashFamilyError(ReproError):
    """A hash family was configured inconsistently."""


def _sorted_domain(domain: Iterable[Any]) -> Tuple[Any, ...]:
    return tuple(sorted(set(domain), key=repr))


class RandomHashFamily:
    """Monte-Carlo family: ``trials`` uniform random functions D → [k].

    One-sided error: a nonempty query may be missed with probability at
    most (1 − e^{-k})^trials ≤ e^{-c} when trials ≥ c·e^k.
    """

    exact = False

    def __init__(self, confidence: float = 3.0, seed: int = 0) -> None:
        if confidence <= 0:
            raise HashFamilyError("confidence must be positive")
        self.confidence = confidence
        self.seed = seed

    def trials_for(self, k: int) -> int:
        return max(1, math.ceil(self.confidence * math.exp(k)))

    def functions(self, domain: Iterable[Any], k: int) -> Iterator[HashFunction]:
        values = _sorted_domain(domain)
        if k <= 1:
            yield {value: 1 for value in values}
            return
        rng = random.Random(self.seed)
        for _ in range(self.trials_for(k)):
            yield {value: rng.randint(1, k) for value in values}


class GreedyPerfectHashFamily:
    """Deterministic, verified k-perfect family for a concrete domain.

    Every k-subset of the domain is split (mapped injectively into [k]) by
    some member.  Candidates come from a seeded PRNG; a candidate is kept
    iff it covers at least one uncovered subset.  If ``stall_limit``
    consecutive candidates make no progress, a targeted function covering
    the lexicographically first uncovered subset is added, so construction
    always terminates.
    """

    exact = True

    def __init__(self, seed: int = 0, stall_limit: int = 20) -> None:
        self.seed = seed
        self.stall_limit = stall_limit

    def functions(self, domain: Iterable[Any], k: int) -> Iterator[HashFunction]:
        values = _sorted_domain(domain)
        if k <= 1 or len(values) <= 1:
            yield {value: 1 for value in values}
            return
        if k >= len(values):
            # Any injective map splits everything.
            yield {value: i + 1 for i, value in enumerate(values)}
            return

        uncovered = set(combinations(values, k))
        rng = random.Random(self.seed)
        stalls = 0
        while uncovered:
            candidate = {value: rng.randint(1, k) for value in values}
            split = {
                subset
                for subset in uncovered
                if len({candidate[v] for v in subset}) == k
            }
            if split:
                uncovered -= split
                stalls = 0
                yield candidate
                continue
            stalls += 1
            if stalls >= self.stall_limit:
                target = min(uncovered)
                forced = {value: 1 for value in values}
                for i, member in enumerate(target):
                    forced[member] = i + 1
                uncovered -= {
                    subset
                    for subset in uncovered
                    if len({forced[v] for v in subset}) == k
                }
                stalls = 0
                yield forced


class ExhaustiveHashFamily:
    """All k^|D| functions D → [k] — exact, for tiny domains only."""

    exact = True

    def __init__(self, max_functions: int = 2_000_000) -> None:
        self.max_functions = max_functions

    def functions(self, domain: Iterable[Any], k: int) -> Iterator[HashFunction]:
        values = _sorted_domain(domain)
        if k <= 1 or not values:
            yield {value: 1 for value in values}
            return
        total = k ** len(values)
        if total > self.max_functions:
            raise HashFamilyError(
                f"exhaustive family would have {total} functions; "
                f"use GreedyPerfectHashFamily instead"
            )
        for assignment in product(range(1, k + 1), repeat=len(values)):
            yield dict(zip(values, assignment))


def is_perfect_family(
    functions: Sequence[HashFunction], domain: Iterable[Any], k: int
) -> bool:
    """Verify k-perfectness of a family over a domain (test helper)."""
    values = _sorted_domain(domain)
    if k <= 1:
        return bool(functions) or not values
    for subset in combinations(values, k):
        if not any(
            len({h[v] for v in subset}) == k for h in functions
        ):
            return False
    return True
