"""Algorithm 2 of Theorem 2: evaluating Q_h(d) for one hash function.

After Algorithm 1's bottom-up pass the parent relations are join-consistent
with their children; Algorithm 2 finishes the job output-sensitively:

1. *top-down pass* — semijoin each node with its parent, removing dangling
   tuples (after this the relations are globally consistent);
2. *bottom-up pass* — join each node into its parent projected onto
   Z_j = (Y_j ∩ Y_u) ∪ (Z ∩ at(T[j])), accumulating the output variables Z;
3. at the root, project onto Z and emit {τ(t_0) | τ ∈ P*}.
"""

from __future__ import annotations


from ..relational.relation import Relation
from ..evaluation.instantiation import answers_relation
from .algorithm1 import HashedAcyclicEngine
from .hashing import HashFunction


def evaluate_for_hash(
    engine: HashedAcyclicEngine, h: HashFunction
) -> Relation:
    """Q_h(d) as a relation of head tuples (empty when inconsistent)."""
    query = engine.query
    head_names = tuple(v.name for v in query.head_variables())

    relations = engine.bottom_up(h)
    if relations is None:
        return answers_relation(query.head_terms, Relation.from_rows(head_names))
    relations = dict(relations)
    tree = engine.tree

    # Step 1: top-down semijoins (dangling-tuple elimination).
    for j in tree.top_down_order():
        u = tree.parent(j)
        if u is None:
            continue
        relations[j] = relations[j].semijoin(relations[u])

    # Step 2: bottom-up joins carrying shared + output attributes.
    head_set = set(head_names)
    for j in tree.bottom_up_order():
        u = tree.parent(j)
        if u is None:
            continue
        parent_attrs = set(relations[u].attributes)
        keep = tuple(
            a
            for a in relations[j].attributes
            if a in parent_attrs or a in head_set
        )
        # Fused join-project: the child's projection is folded into the
        # join's build side instead of being materialized.
        relations[u] = relations[u]._join_keep(relations[j], keep)

    # Step 3: the answer from the root.
    root = relations[tree.root]
    present = tuple(a for a in root.attributes if a in head_set)
    if set(present) != head_set:
        missing = sorted(head_set - set(present))
        raise AssertionError(
            f"internal error: head variables {missing} did not reach the root"
        )
    return answers_relation(query.head_terms, root.project(head_names))
