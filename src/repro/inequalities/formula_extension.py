"""§5 extensions of Theorem 2 beyond conjunctions of ≠ atoms.

*Parameter q*: an arbitrary ∧/∨ formula φ over inequality atoms (variables
and constants).  All φ variables are hashed, constants are hashed too, the
shadow attributes are carried to the root (selections cannot be pushed
down), and σ_φ̂ is applied there; k = #variables(φ) + #constants(φ) ≤ q.

*Parameter v*: the same works when the x ≠ c atoms occur only
conjunctively — they fold into the S_j selections, the remaining formula
mentions only variables, and k ≤ v.  With x ≠ c combined arbitrarily under
∨ the problem becomes W[SAT]-complete (see
:func:`repro.reductions.wsat_to_positive` adapted in the test-suite), so
:class:`FormulaInequalityEvaluator` refuses that case unless
``allow_disjunctive_constants=True`` (the parameter-q regime).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..errors import QueryError
from ..query.atoms import Inequality
from ..query.conjunctive import ConjunctiveQuery
from ..query.ineq_formula import (
    IneqAnd,
    IneqFormula,
    IneqLeaf,
    IneqOr,
    is_conjunctive_in_constants,
)
from ..query.terms import Variable
from ..relational.attributes import hashed
from ..relational.database import Database
from ..relational.relation import Relation
from ..evaluation.instantiation import answers_relation
from .algorithm1 import HashedAcyclicEngine
from .hashing import GreedyPerfectHashFamily, HashFunction
from .partition import InequalityPartition


def split_conjunctive_constants(
    formula: IneqFormula,
) -> Tuple[Tuple[Inequality, ...], Optional[IneqFormula]]:
    """Split φ into top-level conjunctive x ≠ c atoms and the rest.

    Returns (constant atoms, remaining formula or None).  Only valid when
    the constant atoms occur conjunctively (checked by the caller).
    """
    if isinstance(formula, IneqLeaf):
        if formula.atom.is_variable_variable():
            return (), formula
        return (formula.atom,), None
    if isinstance(formula, IneqAnd):
        constants: List[Inequality] = []
        rest: List[IneqFormula] = []
        for child in formula.children:
            child_constants, child_rest = split_conjunctive_constants(child)
            constants.extend(child_constants)
            if child_rest is not None:
                rest.append(child_rest)
        if not rest:
            return tuple(constants), None
        remaining = rest[0] if len(rest) == 1 else IneqAnd(rest)
        return tuple(constants), remaining
    return (), formula  # an Or node: no top-level conjunctive constants


class FormulaInequalityEvaluator:
    """Acyclic queries with an arbitrary ∧/∨ formula of ≠ atoms."""

    def __init__(self, family=None, allow_disjunctive_constants: bool = False) -> None:
        self.family = family or GreedyPerfectHashFamily()
        self.allow_disjunctive_constants = allow_disjunctive_constants

    # ------------------------------------------------------------------

    def decide(
        self,
        query: ConjunctiveQuery,
        formula: IneqFormula,
        database: Database,
    ) -> bool:
        """Is there a satisfying instantiation of (relational atoms ∧ φ)?"""
        engine, phi, constants = self._prepare(query, formula, database)
        for h in self._functions(engine, phi, constants):
            relations = engine.bottom_up(h)
            if relations is None:
                continue
            root = self._apply_formula(
                relations[engine.tree.root], phi, h, constants
            )
            if not root.is_empty():
                return True
        return False

    def evaluate(
        self,
        query: ConjunctiveQuery,
        formula: IneqFormula,
        database: Database,
    ) -> Relation:
        """All head tuples of satisfying instantiations."""
        engine, phi, constants = self._prepare(query, formula, database)
        head_names = tuple(v.name for v in query.head_variables())
        result = answers_relation(query.head_terms, Relation.from_rows(head_names))
        for h in self._functions(engine, phi, constants):
            relations = engine.bottom_up(h)
            if relations is None:
                continue
            relations = dict(relations)
            root_id = engine.tree.root
            relations[root_id] = self._apply_formula(
                relations[root_id], phi, h, constants
            )
            if relations[root_id].is_empty():
                continue
            piece = _finish_evaluation(engine, relations, head_names)
            result = result.union(piece)
        return result

    # ------------------------------------------------------------------

    def _prepare(
        self,
        query: ConjunctiveQuery,
        formula: IneqFormula,
        database: Database,
    ) -> Tuple[HashedAcyclicEngine, Optional[IneqFormula], Tuple[Any, ...]]:
        if query.inequalities or query.comparisons:
            raise QueryError(
                "pass the inequality formula separately; the query's own "
                "constraint lists must be empty"
            )
        for v in formula.variables():
            if v not in query.body_variable_set():
                raise QueryError(f"formula variable {v!r} not in the query body")

        if self.allow_disjunctive_constants or is_conjunctive_in_constants(formula):
            constant_atoms, remaining = (
                split_conjunctive_constants(formula)
                if is_conjunctive_in_constants(formula)
                else ((), formula)
            )
        else:
            raise QueryError(
                "x != c atoms under OR make the problem W[SAT]-complete for "
                "parameter v; pass allow_disjunctive_constants=True to run "
                "in the parameter-q regime"
            )

        partition = InequalityPartition(i1=(), i2=tuple(constant_atoms), v1=())
        phi = remaining
        phi_vars = tuple(sorted(phi.variables(), key=lambda v: v.name)) if phi else ()
        engine = HashedAcyclicEngine(
            query=query,
            database=database,
            hashed_variables=phi_vars,
            partners={},
            partition=partition,
            carry_to_root=True,
        )
        phi_constants: Tuple[Any, ...] = ()
        if phi is not None:
            phi_constants = tuple(
                sorted({c.value for c in phi.constants()}, key=repr)
            )
        return engine, phi, phi_constants

    def _functions(
        self,
        engine: HashedAcyclicEngine,
        phi: Optional[IneqFormula],
        constants: Tuple[Any, ...],
    ):
        if phi is None or not engine.hashed_variables:
            yield {}
            return
        k = len(engine.hashed_variables) + len(constants)
        hashed_names = {v.name for v in engine.hashed_variables}
        values: set = set(constants)
        for relation in engine.base_relations.values():
            for name in relation.attributes:
                if name in hashed_names:
                    values |= relation.column(name)
        yield from self.family.functions(frozenset(values), k)

    @staticmethod
    def _apply_formula(
        root: Relation,
        phi: Optional[IneqFormula],
        h: HashFunction,
        constants: Tuple[Any, ...],
    ) -> Relation:
        """σ_φ̂ at the root: evaluate φ on the hashed shadow attributes."""
        if phi is None:
            return root

        def predicate(row: Dict[str, Any]) -> bool:
            valuation = {}
            for variable in phi.variables():
                valuation[variable] = row[hashed(variable.name)]
            return _evaluate_hashed(phi, valuation, h)

        return root.select(predicate)


def _evaluate_hashed(
    phi: IneqFormula, valuation: Dict[Variable, int], h: HashFunction
) -> bool:
    """Evaluate φ with variables bound to hash values and constants hashed."""
    if isinstance(phi, IneqLeaf):
        left, right = phi.atom.left, phi.atom.right
        lv = valuation[left] if isinstance(left, Variable) else h.get(left.value, 1)
        rv = valuation[right] if isinstance(right, Variable) else h.get(right.value, 1)
        return lv != rv
    if isinstance(phi, IneqAnd):
        return all(_evaluate_hashed(c, valuation, h) for c in phi.children)
    if isinstance(phi, IneqOr):
        return any(_evaluate_hashed(c, valuation, h) for c in phi.children)
    raise QueryError(f"unknown formula node: {phi!r}")


def _finish_evaluation(
    engine: HashedAcyclicEngine,
    relations: Dict[int, Relation],
    head_names: Tuple[str, ...],
) -> Relation:
    """Algorithm 2's passes starting from filtered relations."""
    tree = engine.tree
    for j in tree.top_down_order():
        u = tree.parent(j)
        if u is None:
            continue
        relations[j] = relations[j].semijoin(relations[u])
    head_set = set(head_names)
    for j in tree.bottom_up_order():
        u = tree.parent(j)
        if u is None:
            continue
        parent_attrs = set(relations[u].attributes)
        keep = tuple(
            a
            for a in relations[j].attributes
            if a in parent_attrs or a in head_set
        )
        # Fused join-project, as in the plain Yannakakis upward pass.
        relations[u] = relations[u]._join_keep(relations[j], keep)
    root = relations[tree.root]
    return answers_relation(
        engine.query.head_terms, root.project(head_names)
    )
