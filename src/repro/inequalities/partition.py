"""Partitioning inequality atoms into I1 / I2 (§5, Theorem 2 setup).

"Partition the inequality atoms of Q into the set I1 of atoms x_i ≠ x_j
such that the variables x_i, x_j do not occur together in any hyperedge
(relational atom), and the set I2 of the remaining atoms (x_i ≠ c and
x_i ≠ x_j such that x_i, x_j are in a common hyperedge).  Let V1 be the
set of variables that occur in I1 and let k = |V1|."

I2 atoms (and the constant inequalities) can be folded into the per-atom
selections S_j; only I1 needs the hashing machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from ..errors import QueryError
from ..query.atoms import Inequality
from ..query.conjunctive import ConjunctiveQuery
from ..query.terms import Variable
from ..relational.columns import values_equal
from ..relational.database import Database
from ..relational.relation import Relation
from ..evaluation.instantiation import atom_candidate_relation


@dataclass(frozen=True)
class InequalityPartition:
    """The (I1, I2, V1, k) of Theorem 2's preprocessing."""

    i1: Tuple[Inequality, ...]
    i2: Tuple[Inequality, ...]
    v1: Tuple[Variable, ...]

    @property
    def k(self) -> int:
        """|V1| — the hash range size."""
        return len(self.v1)

    def partners(self) -> Dict[Variable, FrozenSet[Variable]]:
        """For each V1 variable, its I1 inequality partners."""
        out: Dict[Variable, set] = {v: set() for v in self.v1}
        for ineq in self.i1:
            left, right = ineq.left, ineq.right
            out[left].add(right)   # I1 atoms are variable-variable
            out[right].add(left)
        return {v: frozenset(s) for v, s in out.items()}


def partition_inequalities(query: ConjunctiveQuery) -> InequalityPartition:
    """Split the query's ≠ atoms into I1 and I2."""
    if query.comparisons:
        raise QueryError(
            "Theorem 2 machinery covers != atoms; comparisons are Theorem 3"
        )
    cooccur: set = set()
    for atom in query.atoms:
        vars_ = atom.variables()
        for i, a in enumerate(vars_):
            for b in vars_[i + 1:]:
                cooccur.add(frozenset((a, b)))

    i1: List[Inequality] = []
    i2: List[Inequality] = []
    for ineq in query.inequalities:
        if ineq.is_variable_variable():
            pair = frozenset((ineq.left, ineq.right))
            if pair in cooccur:
                i2.append(ineq)
            else:
                i1.append(ineq)
        else:
            i2.append(ineq)

    v1_ordered: Dict[Variable, None] = {}
    for ineq in i1:
        for v in ineq.variables():
            v1_ordered.setdefault(v, None)
    return InequalityPartition(tuple(i1), tuple(i2), tuple(v1_ordered))


def selected_candidate_relation(
    atom_index: int,
    query: ConjunctiveQuery,
    database: Database,
    i2: Tuple[Inequality, ...],
) -> Relation:
    """S_j = π_{U_j} σ_{F_j}(R_{i_j}) with the I2 / constant selections folded in.

    The selection F_j reflects (i) the atom's constants, (ii) its repeated
    variables, (iii) inequalities x ≠ c with x among the atom's variables,
    and (iv) inequalities x ≠ y with both variables among the atom's
    variables — items (iii)/(iv) of the paper's construction.
    """
    atom = query.atoms[atom_index]
    base = atom_candidate_relation(atom, database[atom.relation])
    names = set(base.attributes)
    result = base
    for ineq in i2:
        left, right = ineq.left, ineq.right
        if isinstance(left, Variable) and isinstance(right, Variable):
            if left.name in names and right.name in names:
                result = result.select_attr_neq(left.name, right.name)
        elif isinstance(left, Variable):
            if left.name in names:
                value = right.value  # type: ignore[union-attr]
                result = result.select(
                    lambda row, _n=left.name, _v=value: not values_equal(
                        row[_n], _v
                    )
                )
        elif isinstance(right, Variable):
            if right.name in names:
                value = left.value  # type: ignore[union-attr]
                result = result.select(
                    lambda row, _n=right.name, _v=value: not values_equal(
                        row[_n], _v
                    )
                )
    return result
