"""Theorem 2: f.p.-tractable acyclic conjunctive queries with ≠ atoms.

Color-coding (hash the domain into [k]) combined with acyclic-query
processing over a join tree.  See :class:`AcyclicInequalityEvaluator` for
the main entry point and :class:`FormulaInequalityEvaluator` for the §5
∧/∨-formula extensions.
"""

from .algorithm1 import HashedAcyclicEngine, build_engine
from .algorithm2 import evaluate_for_hash
from .evaluator import AcyclicInequalityEvaluator
from .formula_extension import (
    FormulaInequalityEvaluator,
    split_conjunctive_constants,
)
from .hashing import (
    ExhaustiveHashFamily,
    GreedyPerfectHashFamily,
    HashFamilyError,
    HashFunction,
    RandomHashFamily,
    is_perfect_family,
)
from .partition import (
    InequalityPartition,
    partition_inequalities,
    selected_candidate_relation,
)

__all__ = [
    "AcyclicInequalityEvaluator",
    "ExhaustiveHashFamily",
    "FormulaInequalityEvaluator",
    "GreedyPerfectHashFamily",
    "HashFamilyError",
    "HashFunction",
    "HashedAcyclicEngine",
    "InequalityPartition",
    "RandomHashFamily",
    "build_engine",
    "evaluate_for_hash",
    "is_perfect_family",
    "partition_inequalities",
    "selected_candidate_relation",
    "split_conjunctive_constants",
]
