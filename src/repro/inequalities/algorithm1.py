"""Algorithm 1 of Theorem 2: the emptiness test for one hash function.

Given an acyclic query with inequalities, a database, and h : D → [k],
decide whether some *consistent* (h-injective on I1 pairs) satisfying
instantiation exists:

1. initialize P_j := S'_j — the selected candidate relation of atom j
   extended with hashed shadow attributes x' = h(x) for x ∈ U_j ∩ V1;
2. process the join tree bottom-up; merging child j into parent u:

       P_u := σ_F ( P_u ⋈ π_{Y_j ∩ Y_u}(P_j) )

   where Y_j = U_j ∪ U'_j ∪ W'_j and F checks the I1 inequalities whose
   one side just arrived from j's subtree and whose other side is already
   present in P_u but absent from Y_j;
3. the query is h-consistently satisfiable iff no P becomes empty and the
   root ends nonempty.

The W_j sets ("which hashed attributes must be carried through node j")
follow the paper's definition; :class:`HashedAcyclicEngine` also supports
the §5 formula extension's *carry-to-root* mode, where every hashed
attribute is propagated to the root and the (∧/∨) inequality formula is
applied there instead of being pushed down.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import QueryError
from ..hypergraph.join_tree import JoinTree
from ..query.conjunctive import ConjunctiveQuery
from ..query.terms import Variable
from ..relational.attributes import hashed
from ..relational.database import Database
from ..relational.relation import Relation
from .hashing import HashFunction
from .partition import (
    InequalityPartition,
    partition_inequalities,
    selected_candidate_relation,
)


class HashedAcyclicEngine:
    """Per-query preprocessed state shared across hash functions.

    Parameters
    ----------
    query, database:
        The acyclic conjunctive query (≠ atoms allowed) and its data.
    hashed_variables:
        The variables receiving shadow attributes (Theorem 2: V1; formula
        extension: all φ variables).
    partners:
        I1 partner map, used for W_j and the pushed-down σ_F checks.
        Ignored in carry-to-root mode.
    carry_to_root:
        When True, every hashed attribute is propagated to the root and no
        σ_F is applied during merges (the §5 arbitrary-formula mode).
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        database: Database,
        hashed_variables: Sequence[Variable],
        partners: Dict[Variable, FrozenSet[Variable]],
        partition: InequalityPartition,
        carry_to_root: bool = False,
    ) -> None:
        self.query = query
        self.database = database
        self.hashed_variables: Tuple[Variable, ...] = tuple(hashed_variables)
        self.partners = partners
        self.partition = partition
        self.carry_to_root = carry_to_root

        self.tree = JoinTree.from_hypergraph(query.hypergraph())
        self.base_relations: Dict[int, Relation] = {
            j: selected_candidate_relation(j, query, database, partition.i2)
            for j in range(len(query.atoms))
        }
        self._subtree_vars: Dict[int, FrozenSet[Variable]] = {
            j: frozenset(self.tree.subtree_vars(j)) for j in self.tree.nodes()
        }
        self.w_sets = self._compute_w_sets()
        self.y_sets = self._compute_y_sets()

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def atom_vars(self, j: int) -> FrozenSet[Variable]:
        """U_j."""
        return frozenset(self.query.atoms[j].variable_set())

    def _compute_w_sets(self) -> Dict[int, FrozenSet[Variable]]:
        """W_j per the paper (or the carry-to-root variant)."""
        hashed_set = set(self.hashed_variables)
        out: Dict[int, FrozenSet[Variable]] = {}
        for j in self.tree.nodes():
            u_j = self.atom_vars(j)
            members: Set[Variable] = set()
            for x in hashed_set - u_j:
                if x not in self._subtree_vars[j]:
                    continue
                if self.carry_to_root:
                    members.add(x)
                    continue
                # x lives in exactly one proper child subtree of j.
                child_subtree: Optional[FrozenSet[Variable]] = None
                for child in self.tree.children(j):
                    if x in self._subtree_vars[child]:
                        child_subtree = self._subtree_vars[child]
                        break
                if child_subtree is None:
                    continue
                if any(
                    partner not in child_subtree
                    for partner in self.partners.get(x, frozenset())
                ):
                    members.add(x)
            out[j] = frozenset(members)
        return out

    def _compute_y_sets(self) -> Dict[int, FrozenSet[str]]:
        """Y_j = U_j ∪ U'_j ∪ W'_j, as attribute-name sets."""
        hashed_set = set(self.hashed_variables)
        out: Dict[int, FrozenSet[str]] = {}
        for j in self.tree.nodes():
            u_j = self.atom_vars(j)
            names: Set[str] = {v.name for v in u_j}
            names |= {hashed(v.name) for v in u_j & hashed_set}
            names |= {hashed(v.name) for v in self.w_sets[j]}
            out[j] = frozenset(names)
        return out

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------

    def initial_relations(self, h: HashFunction) -> Dict[int, Relation]:
        """P_j := S'_j — extend each S_j with its hashed shadow columns."""
        hashed_set = set(self.hashed_variables)
        out: Dict[int, Relation] = {}
        for j in self.tree.nodes():
            relation = self.base_relations[j]
            for x in sorted(self.atom_vars(j) & hashed_set, key=lambda v: v.name):
                position = relation.attributes.index(x.name)
                relation = relation._extend_positional(
                    hashed(x.name), position, lambda v, _h=h: _h.get(v, 1)
                )
            out[j] = relation
        return out

    def merge_selection(
        self, j: int, parent_attributes: Sequence[str]
    ) -> List[Tuple[str, str]]:
        """The σ_F pairs (hashed attr, hashed attr) for merging node j.

        An I1 inequality x ≠ l is checked here iff x' ∈ Y_j − U'_u and
        l' ∈ attrs(P_u) − Y_j (either orientation).
        """
        if self.carry_to_root:
            return []
        u = self.tree.parent(j)
        if u is None:
            return []
        u_hashed = {
            hashed(v.name)
            for v in self.atom_vars(u) & set(self.hashed_variables)
        }
        parent_set = set(parent_attributes)
        y_j = self.y_sets[j]
        pairs: List[Tuple[str, str]] = []
        for ineq in self.partition.i1:
            for left, right in (
                (ineq.left, ineq.right),
                (ineq.right, ineq.left),
            ):
                left_h = hashed(left.name)    # type: ignore[union-attr]
                right_h = hashed(right.name)  # type: ignore[union-attr]
                if (
                    left_h in y_j
                    and left_h not in u_hashed
                    and right_h in parent_set
                    and right_h not in y_j
                ):
                    pairs.append((left_h, right_h))
        return pairs

    def bottom_up(self, h: HashFunction) -> Optional[Dict[int, Relation]]:
        """Run Algorithm 1; return the relations, or None when Q_h(d) = ∅."""
        relations = self.initial_relations(h)
        if any(rel.is_empty() for rel in relations.values()):
            return None
        for j in self.tree.bottom_up_order():
            u = self.tree.parent(j)
            if u is None:
                continue
            shared = tuple(
                a
                for a in relations[j].attributes
                if a in self.y_sets[j] & self.y_sets[u]
            )
            # Fused join-project: π_shared(P_j) is never materialized.
            merged = relations[u]._join_keep(relations[j], shared)
            for left_h, right_h in self.merge_selection(
                j, relations[u].attributes
            ):
                merged = merged.select_attr_neq(left_h, right_h)
            relations[u] = merged
            if merged.is_empty():
                return None
        if relations[self.tree.root].is_empty():
            return None
        return relations

    def nonempty_for(self, h: HashFunction) -> bool:
        """Is Q_h(d) nonempty?  (The emptiness test of Algorithm 1.)"""
        return self.bottom_up(h) is not None


def build_engine(
    query: ConjunctiveQuery, database: Database
) -> HashedAcyclicEngine:
    """The Theorem 2 engine for a query: hashes V1, pushes σ_F down."""
    if query.comparisons:
        raise QueryError("comparisons are not supported by Theorem 2 machinery")
    partition = partition_inequalities(query)
    return HashedAcyclicEngine(
        query=query,
        database=database,
        hashed_variables=partition.v1,
        partners=partition.partners(),
        partition=partition,
        carry_to_root=False,
    )
