"""Join trees (join forests) of acyclic hypergraphs.

A *join tree* of hypergraph H is a tree whose nodes are H's edges such that
for every hypergraph node x, the tree nodes containing x form a connected
subtree (the running-intersection property).  H is acyclic iff a join tree
exists; we assemble one from the witnesses of the GYO reduction.

Following the paper ("We assume without loss of generality in the following
that T is a tree"), a disconnected join forest is linked into a single tree
by attaching secondary component roots beneath the primary root — sound
because distinct components share no variables.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from ..errors import NotAcyclicError
from .gyo import gyo_reduce
from .hypergraph import Hypergraph


class JoinTree:
    """A rooted join tree over edge indices ``0..num_nodes-1``.

    Attributes
    ----------
    node_vars:
        ``node_vars[i]`` is the variable set of edge/atom i (the paper's
        U_j for atom j).
    """

    __slots__ = ("_parent", "_children", "_root", "node_vars")

    def __init__(
        self,
        parent: Dict[int, Optional[int]],
        root: int,
        node_vars: Sequence[FrozenSet],
    ) -> None:
        self._parent = dict(parent)
        self._root = root
        self.node_vars: Tuple[FrozenSet, ...] = tuple(node_vars)
        self._children: Dict[int, List[int]] = {i: [] for i in self._parent}
        for child, par in self._parent.items():
            if par is not None:
                self._children[par].append(child)
        for kids in self._children.values():
            kids.sort()

    # ------------------------------------------------------------------

    @classmethod
    def from_hypergraph(cls, hypergraph: Hypergraph) -> "JoinTree":
        """Build a join tree via GYO; raises :class:`NotAcyclicError` if cyclic."""
        result = gyo_reduce(hypergraph)
        if not result.is_empty:
            raise NotAcyclicError(
                f"hypergraph is cyclic; irreducible core has "
                f"{len(result.residual)} edges"
            )
        if hypergraph.num_edges == 0:
            raise NotAcyclicError("cannot build a join tree with no edges")
        parent: Dict[int, Optional[int]] = dict(result.witnesses)
        roots = result.surviving_edges
        primary = roots[0]
        for extra_root in roots[1:]:
            parent[extra_root] = primary
        parent[primary] = None
        return cls(parent, primary, hypergraph.edges)

    # ------------------------------------------------------------------

    @property
    def root(self) -> int:
        return self._root

    @property
    def num_nodes(self) -> int:
        return len(self._parent)

    def parent(self, node: int) -> Optional[int]:
        return self._parent[node]

    def children(self, node: int) -> Tuple[int, ...]:
        return tuple(self._children[node])

    def nodes(self) -> Tuple[int, ...]:
        return tuple(sorted(self._parent))

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Yield (child, parent) pairs."""
        for child, par in sorted(self._parent.items()):
            if par is not None:
                yield (child, par)

    def bottom_up_order(self) -> Tuple[int, ...]:
        """Nodes in an order where every child precedes its parent."""
        order: List[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(self._children[node])
        order.reverse()
        return tuple(order)

    def top_down_order(self) -> Tuple[int, ...]:
        """Nodes in an order where every parent precedes its children."""
        return tuple(reversed(self.bottom_up_order()))

    def subtree(self, node: int) -> Tuple[int, ...]:
        """All nodes of the subtree T[node], including *node*."""
        out: List[int] = []
        stack = [node]
        while stack:
            current = stack.pop()
            out.append(current)
            stack.extend(self._children[current])
        return tuple(sorted(out))

    def subtree_vars(self, node: int) -> FrozenSet:
        """at(T[node]): all variables occurring in the subtree of *node*."""
        out: FrozenSet = frozenset()
        for member in self.subtree(node):
            out |= self.node_vars[member]
        return out

    def depth(self, node: int) -> int:
        """Distance from *node* to the root."""
        steps = 0
        current: Optional[int] = node
        while self._parent[current] is not None:
            current = self._parent[current]
            steps += 1
        return steps

    def rooted_at(self, node: int) -> "JoinTree":
        """The same undirected join tree, re-rooted at *node*.

        Any rooting of a join tree is a join tree (the running-intersection
        property is a property of the undirected tree), so the semijoin
        passes stay correct under any choice of root.  The parallel
        executor roots where the head lives; the decision-only batch path
        roots at the parameter atom so the bottom-up pass ends there.
        """
        if node not in self._parent:
            raise KeyError(f"unknown join-tree node {node}")
        if node == self._root:
            return self
        adjacency: Dict[int, List[int]] = {member: [] for member in self._parent}
        for child, par in self._parent.items():
            if par is not None:
                adjacency[child].append(par)
                adjacency[par].append(child)
        parent_map: Dict[int, Optional[int]] = {node: None}
        stack = [node]
        while stack:
            current = stack.pop()
            for neighbor in adjacency[current]:
                if neighbor not in parent_map:
                    parent_map[neighbor] = current
                    stack.append(neighbor)
        return JoinTree(parent_map, node, self.node_vars)

    # ------------------------------------------------------------------

    def verify_running_intersection(self) -> bool:
        """Check the join-tree property: each variable spans a connected subtree."""
        all_vars: set = set()
        for vars_ in self.node_vars:
            all_vars |= vars_
        for variable in all_vars:
            holders = [i for i in self._parent if variable in self.node_vars[i]]
            if len(holders) <= 1:
                continue
            holder_set = set(holders)
            # Connectivity within the induced subgraph of the tree.
            seen = {holders[0]}
            frontier = [holders[0]]
            while frontier:
                current = frontier.pop()
                neighbours = list(self._children[current])
                par = self._parent[current]
                if par is not None:
                    neighbours.append(par)
                for nxt in neighbours:
                    if nxt in holder_set and nxt not in seen:
                        seen.add(nxt)
                        frontier.append(nxt)
            if seen != holder_set:
                return False
        return True

    def __repr__(self) -> str:
        parts = [f"{child}->{par}" for child, par in self.edges()]
        return f"JoinTree(root={self._root}, edges=[{', '.join(parts)}])"


def join_tree_of(hypergraph: Hypergraph) -> JoinTree:
    """Convenience alias for :meth:`JoinTree.from_hypergraph`."""
    return JoinTree.from_hypergraph(hypergraph)
