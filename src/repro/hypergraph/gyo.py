"""The GYO (Graham / Yu–Özsoyoğlu) reduction and alpha-acyclicity.

GYO repeatedly applies two rules until neither fires:

1. delete a node that occurs in at most one edge (an *ear vertex*);
2. delete an edge that is contained in another edge, recording the
   containing edge as its *witness*.

A hypergraph is (alpha-)acyclic iff the reduction deletes every edge.  The
recorded witnesses are exactly the parent pointers of a join forest, which
:mod:`repro.hypergraph.join_tree` assembles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .hypergraph import Hypergraph


@dataclass
class GYOResult:
    """Outcome of a GYO reduction.

    Attributes
    ----------
    witnesses:
        ``witnesses[i] = j`` when edge i was absorbed into surviving edge j
        (i ⊆ j after ear-vertex deletions).  The final surviving edge of
        each connected component has witness ``None``.
    removal_order:
        Edge indices in the order they were deleted; roots appended last.
    surviving_edges:
        Indices never absorbed (the roots of the join forest).  Empty or a
        singleton per component when acyclic.
    residual:
        The irreducible core (nonempty edge set iff the input was cyclic).
    """

    witnesses: Dict[int, Optional[int]]
    removal_order: List[int]
    surviving_edges: List[int]
    residual: Tuple[FrozenSet, ...]

    @property
    def is_empty(self) -> bool:
        """True iff GYO reduced the hypergraph completely (acyclic input)."""
        return not self.residual


def gyo_reduce(hypergraph: Hypergraph) -> GYOResult:
    """Run the GYO reduction, returning witnesses for join-forest assembly.

    Runs in O(edges² · max-edge-size) — simple and fast enough at query
    scale, where the number of atoms is the paper's parameter q.
    """
    # Work on shrinking copies; edges keep their original indices.
    current: Dict[int, Set] = {
        i: set(edge) for i, edge in enumerate(hypergraph.edges)
    }
    witnesses: Dict[int, Optional[int]] = {}
    removal_order: List[int] = []

    changed = True
    while changed:
        changed = False

        # Rule 1: delete ear vertices (nodes in at most one remaining edge).
        counts: Dict = {}
        for members in current.values():
            for node in members:
                counts[node] = counts.get(node, 0) + 1
        for members in current.values():
            lonely = {node for node in members if counts[node] <= 1}
            if lonely:
                members -= lonely
                changed = True

        # Rule 2: delete an edge contained in another (ties broken by index).
        indices = sorted(current)
        absorbed: Optional[Tuple[int, int]] = None
        for i in indices:
            for j in indices:
                if i == j:
                    continue
                if current[i] <= current[j]:
                    absorbed = (i, j)
                    break
            if absorbed:
                break
        if absorbed:
            i, j = absorbed
            witnesses[i] = j
            removal_order.append(i)
            del current[i]
            changed = True
            continue

        # Also: an edge emptied by ear deletions with no peers left.
        empty_now = [i for i, members in current.items() if not members]
        if len(empty_now) == len(current):
            # All remaining edges are empty and mutually containing; absorb
            # them pairwise, keeping one survivor per original component.
            break

    surviving = sorted(current)
    for i in surviving:
        witnesses[i] = witnesses.get(i, None)
        removal_order.append(i)

    # Residual: surviving edges that still have ≥1 node and at least one
    # other surviving edge sharing structure — i.e. the reduction is stuck.
    # Acyclic inputs always reduce each component to a single edge (possibly
    # nonempty).  The reduction is complete iff no two surviving edges share
    # a node and no surviving edge could be absorbed (guaranteed by the
    # loop); it failed iff >= 2 surviving edges share any node.
    residual: Tuple[FrozenSet, ...] = ()
    if len(surviving) > 1:
        node_owners: Dict = {}
        stuck = False
        for i in surviving:
            for node in current[i]:
                if node in node_owners:
                    stuck = True
                node_owners[node] = i
        if stuck:
            residual = tuple(frozenset(current[i]) for i in surviving)

    return GYOResult(
        witnesses=witnesses,
        removal_order=removal_order,
        surviving_edges=surviving,
        residual=residual,
    )


def is_acyclic(hypergraph: Hypergraph) -> bool:
    """Alpha-acyclicity test (GYO reduces to nothing)."""
    return gyo_reduce(hypergraph).is_empty
