"""Hypergraph machinery: acyclicity (GYO), join trees, treewidth."""

from .gyo import GYOResult, gyo_reduce, is_acyclic
from .hypergraph import Hypergraph
from .join_tree import JoinTree, join_tree_of
from .primal import graph_edges, primal_graph
from .treewidth import (
    TreeDecomposition,
    decomposition_from_order,
    exact_treewidth,
    min_degree_order,
    min_fill_order,
    tree_decomposition,
    verify_decomposition,
)

__all__ = [
    "GYOResult",
    "Hypergraph",
    "JoinTree",
    "TreeDecomposition",
    "decomposition_from_order",
    "exact_treewidth",
    "graph_edges",
    "gyo_reduce",
    "is_acyclic",
    "join_tree_of",
    "min_degree_order",
    "min_fill_order",
    "primal_graph",
    "tree_decomposition",
    "verify_decomposition",
]
