"""Primal (Gaifman) graphs of hypergraphs.

The primal graph connects two variables iff they co-occur in some hyperedge.
It underlies the treewidth machinery and the footnote-2 "conflict graph"
style constructions.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from .hypergraph import Hypergraph

Adjacency = Dict[object, Set[object]]


def primal_graph(hypergraph: Hypergraph) -> Adjacency:
    """Adjacency mapping of the primal graph (every node present as a key)."""
    adjacency: Adjacency = {node: set() for node in hypergraph.nodes}
    for edge in hypergraph.edges:
        members = tuple(edge)
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                adjacency[a].add(b)
                adjacency[b].add(a)
    return adjacency


def graph_edges(adjacency: Adjacency) -> FrozenSet[FrozenSet]:
    """The edge set of an adjacency mapping, as unordered pairs."""
    out: Set[FrozenSet] = set()
    for node, neighbours in adjacency.items():
        for other in neighbours:
            out.add(frozenset((node, other)))
    return frozenset(out)
