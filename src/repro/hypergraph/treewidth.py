"""Tree decompositions via elimination-order heuristics.

The paper's closing discussion (and the follow-up literature it seeded)
generalizes acyclicity to bounded treewidth / hypertree width.  We include
the standard elimination-order construction with the min-degree and
min-fill heuristics, plus an exact branch-and-bound width for small graphs
used as a test oracle.  The decomposition drives the bounded-treewidth
evaluation engine in :mod:`repro.evaluation.treewidth_eval`.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import SchemaError
from .hypergraph import Hypergraph
from .primal import Adjacency, primal_graph


@dataclass(frozen=True)
class TreeDecomposition:
    """A tree decomposition: bags plus tree edges between bag indices."""

    bags: Tuple[FrozenSet, ...]
    edges: Tuple[Tuple[int, int], ...]

    @property
    def width(self) -> int:
        """max bag size − 1 (the width of the decomposition)."""
        return max((len(b) for b in self.bags), default=1) - 1

    def neighbours(self, index: int) -> Tuple[int, ...]:
        out = []
        for a, b in self.edges:
            if a == index:
                out.append(b)
            elif b == index:
                out.append(a)
        return tuple(out)


def _copy_adjacency(adjacency: Adjacency) -> Adjacency:
    return {node: set(neighbours) for node, neighbours in adjacency.items()}


def min_degree_order(adjacency: Adjacency) -> Tuple:
    """Elimination order choosing a minimum-degree node at each step."""
    work = _copy_adjacency(adjacency)
    order: List = []
    while work:
        node = min(work, key=lambda n: (len(work[n]), repr(n)))
        _eliminate(work, node)
        order.append(node)
    return tuple(order)


def min_fill_order(adjacency: Adjacency) -> Tuple:
    """Elimination order choosing a minimum-fill-in node at each step."""
    work = _copy_adjacency(adjacency)
    order: List = []
    while work:
        node = min(work, key=lambda n: (_fill_in(work, n), repr(n)))
        _eliminate(work, node)
        order.append(node)
    return tuple(order)


def _fill_in(adjacency: Adjacency, node) -> int:
    neighbours = tuple(adjacency[node])
    missing = 0
    for i, a in enumerate(neighbours):
        for b in neighbours[i + 1:]:
            if b not in adjacency[a]:
                missing += 1
    return missing


def _eliminate(adjacency: Adjacency, node) -> FrozenSet:
    """Remove *node*, cliquing its neighbourhood; returns the bag formed."""
    neighbours = tuple(adjacency[node])
    for i, a in enumerate(neighbours):
        for b in neighbours[i + 1:]:
            adjacency[a].add(b)
            adjacency[b].add(a)
    for other in neighbours:
        adjacency[other].discard(node)
    bag = frozenset((node,) + neighbours)
    del adjacency[node]
    return bag


def decomposition_from_order(adjacency: Adjacency, order: Sequence) -> TreeDecomposition:
    """The tree decomposition induced by an elimination order.

    Bag i is ``{order[i]} ∪ N(order[i])`` at elimination time; bag i's tree
    parent is the bag of the earliest-eliminated node among those
    neighbours.  Nodes with no remaining neighbours start new components,
    which are chained to keep the result a single tree.
    """
    position = {node: i for i, node in enumerate(order)}
    if set(position) != set(adjacency):
        raise SchemaError("elimination order must cover exactly the graph nodes")
    work = _copy_adjacency(adjacency)
    bags: List[FrozenSet] = []
    edges: List[Tuple[int, int]] = []
    pending_roots: List[int] = []
    for node in order:
        neighbours = tuple(work[node])
        bag_index = len(bags)
        bags.append(frozenset((node,) + neighbours))
        if neighbours:
            successor = min(neighbours, key=lambda n: position[n])
            # The successor's bag is created when the successor is
            # eliminated, later; remember the link by node.
            edges.append((bag_index, -position[successor] - 1))  # placeholder
        else:
            pending_roots.append(bag_index)
        _eliminate(work, node)
    # Resolve placeholders: the bag created when node at position p was
    # eliminated is bag p (bags are appended in elimination order).
    resolved = [
        (a, -b - 1) if b < 0 else (a, b)
        for a, b in edges
    ]
    # Chain component roots so the decomposition is one tree.
    for first, second in zip(pending_roots, pending_roots[1:]):
        resolved.append((first, second))
    return TreeDecomposition(tuple(bags), tuple(resolved))


def tree_decomposition(
    hypergraph: Hypergraph, heuristic: str = "min_fill"
) -> TreeDecomposition:
    """A tree decomposition of the query's primal graph.

    Every hyperedge is a clique of the primal graph, so the standard result
    guarantees every hyperedge is contained in some bag — which
    :func:`verify_decomposition` checks and the evaluation engine relies on.
    """
    adjacency = primal_graph(hypergraph)
    if heuristic == "min_fill":
        order = min_fill_order(adjacency)
    elif heuristic == "min_degree":
        order = min_degree_order(adjacency)
    else:
        raise SchemaError(f"unknown heuristic {heuristic!r}")
    return decomposition_from_order(adjacency, order)


def verify_decomposition(
    hypergraph: Hypergraph, decomposition: TreeDecomposition
) -> bool:
    """Check the three tree-decomposition conditions against *hypergraph*.

    (1) bags cover all nodes; (2) every hyperedge fits in some bag;
    (3) for each node, the bags containing it form a connected subtree.
    """
    covered: Set = set()
    for bag in decomposition.bags:
        covered |= bag
    if covered != set(hypergraph.nodes):
        return False
    for edge in hypergraph.edges:
        if not any(edge <= bag for bag in decomposition.bags):
            return False
    adjacency: Dict[int, Set[int]] = {
        i: set() for i in range(len(decomposition.bags))
    }
    for a, b in decomposition.edges:
        adjacency[a].add(b)
        adjacency[b].add(a)
    for node in hypergraph.nodes:
        holders = [
            i for i, bag in enumerate(decomposition.bags) if node in bag
        ]
        if len(holders) <= 1:
            continue
        holder_set = set(holders)
        seen = {holders[0]}
        frontier = [holders[0]]
        while frontier:
            current = frontier.pop()
            for nxt in adjacency[current]:
                if nxt in holder_set and nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        if seen != holder_set:
            return False
    return True


def exact_treewidth(adjacency: Adjacency, upper_bound: Optional[int] = None) -> int:
    """Exact treewidth by exhausting elimination orders (test oracle only).

    Factorial in the node count; intended for graphs with ≤ 8 nodes in the
    test-suite, where it validates the heuristics.
    """
    nodes = tuple(adjacency)
    if not nodes:
        return -1
    best = upper_bound if upper_bound is not None else len(nodes) - 1
    for order in permutations(nodes):
        work = _copy_adjacency(adjacency)
        worst = 0
        for node in order:
            worst = max(worst, len(work[node]))
            if worst >= best + 1:
                break
            _eliminate(work, node)
        else:
            best = min(best, worst)
    return best
