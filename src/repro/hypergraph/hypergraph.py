"""Hypergraphs over query variables.

A query's hypergraph H has the query variables as nodes and one hyperedge
per relational atom (the atom's variable set), per the paper's §5.  Edges
keep positional identity — two atoms with the same variable set yield two
distinct (equal-content) edges — because the join tree built for the
Theorem 2 algorithms needs one tree node per *atom*.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Sequence,
    Set,
    Tuple,
    TypeVar,
)

from ..errors import SchemaError

Node = TypeVar("Node", bound=Hashable)


class Hypergraph:
    """An immutable hypergraph with positionally-identified edges.

    Parameters
    ----------
    nodes:
        The node universe.  Must contain every edge member.  Isolated nodes
        (in no edge) are allowed.
    edges:
        A sequence of node sets; order and multiplicity are preserved.
    """

    __slots__ = ("_nodes", "_edges")

    def __init__(
        self, nodes: Iterable[Node], edges: Sequence[Iterable[Node]]
    ) -> None:
        self._nodes: FrozenSet[Node] = frozenset(nodes)
        self._edges: Tuple[FrozenSet[Node], ...] = tuple(
            frozenset(e) for e in edges
        )
        for i, edge in enumerate(self._edges):
            stray = edge - self._nodes
            if stray:
                raise SchemaError(
                    f"edge {i} contains nodes outside the universe: {sorted(map(repr, stray))}"
                )

    @property
    def nodes(self) -> FrozenSet[Node]:
        return self._nodes

    @property
    def edges(self) -> Tuple[FrozenSet[Node], ...]:
        return self._edges

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def edge(self, index: int) -> FrozenSet[Node]:
        return self._edges[index]

    # ------------------------------------------------------------------

    def incidence(self) -> Dict[Node, Tuple[int, ...]]:
        """Map each node to the indices of the edges containing it."""
        out: Dict[Node, List[int]] = {node: [] for node in self._nodes}
        for i, edge in enumerate(self._edges):
            for node in edge:
                out[node].append(i)
        return {node: tuple(ids) for node, ids in out.items()}

    def is_connected(self) -> bool:
        """True iff the edges form one connected component (w.r.t. shared nodes).

        Isolated nodes are ignored; a hypergraph with no edges is connected.
        """
        if len(self._edges) <= 1:
            return True
        adjacency: Dict[int, Set[int]] = {i: set() for i in range(len(self._edges))}
        incidence = self.incidence()
        for ids in incidence.values():
            for a in ids:
                for b in ids:
                    if a != b:
                        adjacency[a].add(b)
        seen = {0}
        frontier = [0]
        while frontier:
            current = frontier.pop()
            for nxt in adjacency[current]:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return len(seen) == len(self._edges)

    def is_acyclic(self) -> bool:
        """Alpha-acyclicity via GYO reduction."""
        from .gyo import gyo_reduce

        return gyo_reduce(self).is_empty

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return self._nodes == other._nodes and self._edges == other._edges

    def __hash__(self) -> int:
        return hash((self._nodes, self._edges))

    def __repr__(self) -> str:
        edges = [sorted(map(repr, e)) for e in self._edges]
        return f"Hypergraph({len(self._nodes)} nodes, edges={edges!r})"
