"""Boolean formulas (fan-out-1 circuits) for weighted formula satisfiability.

W[SAT] is defined via the weighted satisfiability of Boolean *formulas* —
circuits in which every gate has fan-out 1, i.e. trees.  The Theorem 1(2)
lower-bound reduction also needs syntactic access to positive and negative
occurrences of variables, so formulas support negation-normal-form
conversion where every leaf is a literal.
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet, Iterable, List, Tuple, Union

from ..errors import ReproError
from .circuit import CircuitBuilder, Circuit


class FormulaError(ReproError):
    """Structural problem in a Boolean formula."""


class BoolVar:
    """A propositional variable leaf."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name:
            raise FormulaError("variable name must be nonempty")
        self.name = name

    def evaluate(self, true_vars: AbstractSet[str]) -> bool:
        return self.name in true_vars

    def variables(self) -> FrozenSet[str]:
        return frozenset((self.name,))

    def size(self) -> int:
        return 1

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BoolVar) and self.name == other.name

    def __hash__(self) -> int:
        return hash((BoolVar, self.name))


class BoolNot:
    """¬φ."""

    __slots__ = ("operand",)

    def __init__(self, operand: "BoolFormula") -> None:
        self.operand = operand

    def evaluate(self, true_vars: AbstractSet[str]) -> bool:
        return not self.operand.evaluate(true_vars)

    def variables(self) -> FrozenSet[str]:
        return self.operand.variables()

    def size(self) -> int:
        return 1 + self.operand.size()

    def __repr__(self) -> str:
        return f"~{self.operand!r}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BoolNot) and self.operand == other.operand

    def __hash__(self) -> int:
        return hash((BoolNot, self.operand))


class _BoolJunction:
    """Shared ∧ / ∨ implementation (n-ary, flattened)."""

    __slots__ = ("children",)
    _symbol = "?"

    def __init__(self, children: Iterable["BoolFormula"]) -> None:
        flat: List["BoolFormula"] = []
        for child in children:
            if type(child) is type(self):
                flat.extend(child.children)
            else:
                flat.append(child)
        if not flat:
            raise FormulaError(f"empty {self._symbol}-junction")
        self.children: Tuple["BoolFormula", ...] = tuple(flat)

    def evaluate(self, true_vars: AbstractSet[str]) -> bool:
        fold = all if isinstance(self, BoolAnd) else any
        return fold(child.evaluate(true_vars) for child in self.children)

    def variables(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for child in self.children:
            out |= child.variables()
        return out

    def size(self) -> int:
        return 1 + sum(c.size() for c in self.children)

    def __repr__(self) -> str:
        sym = f" {self._symbol} "
        return "(" + sym.join(repr(c) for c in self.children) + ")"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.children == other.children

    def __hash__(self) -> int:
        return hash((type(self), self.children))


class BoolAnd(_BoolJunction):
    """φ1 ∧ ... ∧ φn."""

    _symbol = "&"


class BoolOr(_BoolJunction):
    """φ1 ∨ ... ∨ φn."""

    _symbol = "|"


BoolFormula = Union[BoolVar, BoolNot, BoolAnd, BoolOr]


def var(name: str) -> BoolVar:
    return BoolVar(name)


def fand(*children: BoolFormula) -> BoolFormula:
    """∧ of the children (a single child passes through)."""
    if len(children) == 1:
        return children[0]
    return BoolAnd(children)


def for_(*children: BoolFormula) -> BoolFormula:
    """∨ of the children (a single child passes through)."""
    if len(children) == 1:
        return children[0]
    return BoolOr(children)


def fnot(child: BoolFormula) -> BoolFormula:
    return BoolNot(child)


def to_nnf(formula: BoolFormula) -> BoolFormula:
    """Negation normal form: every ¬ sits directly on a variable."""
    if isinstance(formula, BoolVar):
        return formula
    if isinstance(formula, BoolAnd):
        return BoolAnd(to_nnf(c) for c in formula.children)
    if isinstance(formula, BoolOr):
        return BoolOr(to_nnf(c) for c in formula.children)
    if isinstance(formula, BoolNot):
        inner = formula.operand
        if isinstance(inner, BoolVar):
            return formula
        if isinstance(inner, BoolNot):
            return to_nnf(inner.operand)
        if isinstance(inner, BoolAnd):
            return BoolOr(to_nnf(BoolNot(c)) for c in inner.children)
        if isinstance(inner, BoolOr):
            return BoolAnd(to_nnf(BoolNot(c)) for c in inner.children)
    raise FormulaError(f"unknown formula node: {formula!r}")


def is_nnf(formula: BoolFormula) -> bool:
    """True iff negations appear only directly on variables."""
    if isinstance(formula, BoolVar):
        return True
    if isinstance(formula, BoolNot):
        return isinstance(formula.operand, BoolVar)
    if isinstance(formula, (BoolAnd, BoolOr)):
        return all(is_nnf(c) for c in formula.children)
    return False


def formula_to_circuit(formula: BoolFormula) -> Circuit:
    """Compile to a (tree-shaped) circuit; shared variables share one input."""
    builder = CircuitBuilder()
    input_ids = {}
    for name in sorted(formula.variables()):
        input_ids[name] = builder.input(name)

    def compile_node(node: BoolFormula) -> str:
        if isinstance(node, BoolVar):
            return input_ids[node.name]
        if isinstance(node, BoolNot):
            return builder.not_(compile_node(node.operand))
        if isinstance(node, BoolAnd):
            return builder.and_(*(compile_node(c) for c in node.children))
        if isinstance(node, BoolOr):
            return builder.or_(*(compile_node(c) for c in node.children))
        raise FormulaError(f"unknown formula node: {node!r}")

    return builder.build(compile_node(formula))
