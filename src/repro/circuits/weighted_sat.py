"""Weighted satisfiability solvers — the complete problems of the W hierarchy.

``weighted X satisfiability``: given X (a circuit / formula / CNF) and an
integer k, is there a satisfying assignment with exactly k variables set to
true?  These solvers are the ground-truth oracles the reduction test
harness compares against:

* :func:`weighted_circuit_satisfiable` — generic k-subset enumeration,
  O(C(n, k) · |C|), with a monotone shortcut;
* :func:`weighted_formula_satisfiable` / :func:`weighted_cnf_satisfiable`
  — the same enumeration over formula/CNF evaluators;
* :func:`negative_cnf_weighted_satisfiable` — the fast path for
  all-negative CNFs (the paper's CQ reduction output): clauses ¬a ∨ ¬b are
  conflict edges, so a weight-k witness is an independent set of size k in
  the conflict graph, found by backtracking with group pruning.
"""

from __future__ import annotations

from itertools import combinations
from typing import (
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .circuit import Circuit
from .cnf import CNF
from .formulas import BoolFormula

Witness = Optional[FrozenSet[str]]


def _enumerate_weighted(
    variables: Sequence[str], k: int, accepts
) -> Witness:
    """First weight-k subset accepted by the predicate, or None."""
    if k < 0 or k > len(variables):
        return None
    for subset in combinations(variables, k):
        chosen = frozenset(subset)
        if accepts(chosen):
            return chosen
    return None


def weighted_circuit_satisfiable(circuit: Circuit, k: int) -> Witness:
    """A weight-k satisfying input set, or None.

    For monotone circuits, a quick feasibility check runs first: if the
    all-ones input fails, no input can succeed; if the all-ones input works
    but no weight-k subset does, enumeration still decides exactly.
    """
    inputs = tuple(sorted(circuit.inputs))
    if circuit.is_monotone():
        if k <= len(inputs) and not circuit.evaluate(frozenset(inputs)):
            return None
    return _enumerate_weighted(inputs, k, circuit.evaluate)


def weighted_formula_satisfiable(formula: BoolFormula, k: int) -> Witness:
    """A weight-k satisfying variable set of a Boolean formula, or None."""
    variables = tuple(sorted(formula.variables()))
    return _enumerate_weighted(variables, k, formula.evaluate)


def weighted_cnf_satisfiable(cnf: CNF, k: int) -> Witness:
    """A weight-k satisfying variable set of a CNF, or None.

    Dispatches to the all-negative fast path when applicable; otherwise
    falls back to k-subset enumeration.
    """
    if cnf.all_literals_negative():
        return negative_cnf_weighted_satisfiable(cnf, k)
    variables = tuple(sorted(cnf.variables()))
    return _enumerate_weighted(variables, k, cnf.evaluate)


def negative_cnf_weighted_satisfiable(
    cnf: CNF, k: int, groups: Optional[Mapping[str, Sequence[str]]] = None
) -> Witness:
    """Weight-k satisfiability when every literal is negative.

    An assignment satisfies ``¬a ∨ ¬b`` iff not both a and b are true, so a
    weight-k witness is an independent set of size k in the *conflict
    graph* whose edges are the 2-clauses (wider all-negative clauses allow
    all-but-one of their variables; they are handled by explicit checking).

    When *groups* is given (mapping group id → variables, pairwise
    disjoint, as produced by the CQ→2-CNF reduction where each atom's z
    variables form one group with internal conflicts), the search branches
    over groups — one chosen variable per group — which mirrors the
    intended one-tuple-per-atom semantics and prunes hard.
    """
    variables = tuple(sorted(cnf.variables()))
    if k < 0:
        return None
    if k == 0:
        return frozenset() if cnf.evaluate(frozenset()) else None

    conflicts: Dict[str, Set[str]] = {v: set() for v in variables}
    wide_clauses: List[Tuple[str, ...]] = []
    for clause in cnf.clauses:
        names = tuple(l.variable for l in clause)
        if len(names) == 1:
            # ¬a alone: a can never be chosen.
            conflicts[names[0]].add(names[0])
        elif len(names) == 2:
            a, b = names
            if a == b:
                conflicts[a].add(a)
            else:
                conflicts[a].add(b)
                conflicts[b].add(a)
        else:
            wide_clauses.append(names)

    if groups is not None:
        group_lists = [tuple(members) for members in groups.values()]
        if len(group_lists) < k:
            return None
        # Choose at most one variable per group, k picks in total.  The
        # CQ→2-CNF reduction always has exactly k groups, making every
        # group mandatory; the skip branch keeps the solver correct for
        # general group structures.
        chosen: List[str] = []

        def backtrack(index: int) -> Witness:
            if len(chosen) == k:
                witness = frozenset(chosen)
                if cnf.evaluate(witness):
                    return witness
                return None
            if index >= len(group_lists):
                return None
            if len(group_lists) - index < k - len(chosen):
                return None
            for candidate in group_lists[index]:
                if candidate in conflicts[candidate]:
                    continue
                if any(candidate in conflicts[c] for c in chosen):
                    continue
                chosen.append(candidate)
                found = backtrack(index + 1)
                if found is not None:
                    return found
                chosen.pop()
            return backtrack(index + 1)  # skip this group

        return backtrack(0)

    # Generic independent-set backtracking with lexicographic candidates.
    order = sorted(variables, key=lambda v: len(conflicts[v]))
    chosen_set: List[str] = []

    def search(start: int) -> Witness:
        if len(chosen_set) == k:
            witness = frozenset(chosen_set)
            for wide in wide_clauses:
                if all(name in witness for name in wide):
                    return None
            return witness
        remaining = len(order) - start
        if remaining < k - len(chosen_set):
            return None
        for i in range(start, len(order)):
            candidate = order[i]
            if candidate in conflicts[candidate]:
                continue
            if any(candidate in conflicts[c] for c in chosen_set):
                continue
            chosen_set.append(candidate)
            found = search(i + 1)
            if found is not None:
                return found
            chosen_set.pop()
        return None

    return search(0)
