"""Leveling monotone circuits into strict OR/AND alternation.

The Theorem 1(3) reduction assumes "the given circuit alternates between OR
and AND gates and that the output is an OR gate at level 2t" with inputs at
level 0.  :func:`level_alternate` rewrites any monotone circuit into that
shape, preserving semantics:

* every gate is assigned a level: OR gates sit on even levels, AND gates on
  odd levels;
* every wire connects adjacent levels — longer jumps are padded with unary
  identity gates (a 1-input AND or OR computes its input);
* the output is an OR gate at an even level 2t.

The construction at most doubles the depth and adds O(wires · depth) pad
gates — immaterial for the reduction, whose parameters depend only on t
and k.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .circuit import AND, Circuit, CircuitError, Gate, INPUT, OR


def level_alternate(circuit: Circuit) -> Tuple[Circuit, int]:
    """Return (leveled circuit, t) with OR output at level 2t.

    Raises :class:`CircuitError` for non-monotone circuits.
    """
    if not circuit.is_monotone():
        raise CircuitError("level_alternate requires a monotone circuit")

    gates = circuit.gates()  # topological order
    new_gates: List[Gate] = []
    level_of: Dict[str, int] = {}
    pad_counter = [0]

    def pad_kind(level: int) -> str:
        return OR if level % 2 == 0 else AND

    def fresh_pad() -> str:
        pad_counter[0] += 1
        return f"__pad{pad_counter[0]}"

    def raise_to(source: str, target_level: int) -> str:
        """Chain unary identity gates from *source* up to *target_level*."""
        current = source
        current_level = level_of[current]
        while current_level < target_level:
            current_level += 1
            pad_id = fresh_pad()
            new_gates.append(Gate(pad_id, pad_kind(current_level), (current,)))
            level_of[pad_id] = current_level
            current = pad_id
        return current

    for gate in gates:
        if gate.kind == INPUT:
            new_gates.append(gate)
            level_of[gate.gate_id] = 0
            continue
        parity = 1 if gate.kind == AND else 0
        minimum = 1 + max(level_of[s] for s in gate.inputs)
        target = minimum if minimum % 2 == parity else minimum + 1
        lifted = tuple(raise_to(s, target - 1) for s in gate.inputs)
        new_gates.append(Gate(gate.gate_id, gate.kind, lifted))
        level_of[gate.gate_id] = target

    output = circuit.output
    output_gate = circuit.gate(output)
    if output_gate.kind == INPUT:
        # Degenerate circuit: wrap the single input as AND at 1, OR at 2.
        pad_and = fresh_pad()
        new_gates.append(Gate(pad_and, AND, (output,)))
        level_of[pad_and] = 1
        pad_or = fresh_pad()
        new_gates.append(Gate(pad_or, OR, (pad_and,)))
        level_of[pad_or] = 2
        output = pad_or
    elif output_gate.kind == AND:
        pad_or = fresh_pad()
        new_gates.append(Gate(pad_or, OR, (output,)))
        level_of[pad_or] = level_of[output] + 1
        output = pad_or

    leveled = Circuit(new_gates, output)
    top = level_of[output]
    if top % 2 != 0:
        raise CircuitError("internal error: output level is odd after leveling")
    return leveled, top // 2


def check_alternation(circuit: Circuit) -> bool:
    """Verify the invariants :func:`level_alternate` promises.

    Leveled wiring; OR on even levels, AND on odd; inputs only at level 0;
    output an OR gate on an even level.
    """
    if not circuit.is_leveled():
        return False
    for gate in circuit.gates():
        level = circuit.level(gate.gate_id)
        if gate.kind == INPUT and level != 0:
            return False
        if gate.kind == AND and level % 2 != 1:
            return False
        if gate.kind == OR and level % 2 != 0:
            return False
    output = circuit.gate(circuit.output)
    return output.kind == OR and circuit.level(circuit.output) % 2 == 0
