"""Boolean circuits: DAGs of AND/OR/NOT gates with unbounded fan-in/out.

Follows the paper's §2 conventions:

* inputs are level-0 gates;
* the *depth* is the longest input→output path, **not counting NOT gates
  applied directly to inputs**;
* a circuit is *monotone* iff it has no NOT gates.

Circuits are immutable once built; use :class:`CircuitBuilder` to construct
them incrementally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Dict, Iterable, List, Optional, Tuple

from ..errors import ReproError


class CircuitError(ReproError):
    """Structural problem in a circuit definition."""


INPUT = "INPUT"
AND = "AND"
OR = "OR"
NOT = "NOT"

_KINDS = (INPUT, AND, OR, NOT)


@dataclass(frozen=True)
class Gate:
    """One gate: an id, a kind, and the ids of its input gates."""

    gate_id: str
    kind: str
    inputs: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise CircuitError(f"unknown gate kind {self.kind!r}")
        if self.kind == INPUT and self.inputs:
            raise CircuitError(f"input gate {self.gate_id!r} cannot have inputs")
        if self.kind == NOT and len(self.inputs) != 1:
            raise CircuitError(f"NOT gate {self.gate_id!r} needs exactly one input")
        if self.kind in (AND, OR) and not self.inputs:
            raise CircuitError(f"{self.kind} gate {self.gate_id!r} needs inputs")


class Circuit:
    """An immutable Boolean circuit with one output gate."""

    __slots__ = ("_gates", "_output", "_order", "_inputs")

    def __init__(self, gates: Iterable[Gate], output: str) -> None:
        self._gates: Dict[str, Gate] = {}
        for gate in gates:
            if gate.gate_id in self._gates:
                raise CircuitError(f"duplicate gate id {gate.gate_id!r}")
            self._gates[gate.gate_id] = gate
        if output not in self._gates:
            raise CircuitError(f"output gate {output!r} undefined")
        self._output = output
        for gate in self._gates.values():
            for source in gate.inputs:
                if source not in self._gates:
                    raise CircuitError(
                        f"gate {gate.gate_id!r} reads undefined gate {source!r}"
                    )
        self._order = self._topological_order()
        self._inputs = tuple(
            g.gate_id for g in self._gates.values() if g.kind == INPUT
        )

    # ------------------------------------------------------------------

    def _topological_order(self) -> Tuple[str, ...]:
        state: Dict[str, int] = {}  # 0 = visiting, 1 = done
        order: List[str] = []

        for start in self._gates:
            if start in state:
                continue
            stack: List[Tuple[str, int]] = [(start, 0)]
            while stack:
                node, phase = stack.pop()
                if phase == 0:
                    if state.get(node) == 1:
                        continue
                    if state.get(node) == 0:
                        raise CircuitError(f"cycle through gate {node!r}")
                    state[node] = 0
                    stack.append((node, 1))
                    for source in self._gates[node].inputs:
                        if state.get(source) != 1:
                            stack.append((source, 0))
                else:
                    state[node] = 1
                    order.append(node)
        return tuple(order)

    # ------------------------------------------------------------------

    @property
    def output(self) -> str:
        return self._output

    @property
    def inputs(self) -> Tuple[str, ...]:
        """The input gate ids (declaration order)."""
        return self._inputs

    @property
    def num_inputs(self) -> int:
        return len(self._inputs)

    def gate(self, gate_id: str) -> Gate:
        try:
            return self._gates[gate_id]
        except KeyError:
            raise CircuitError(f"unknown gate {gate_id!r}") from None

    def gates(self) -> Tuple[Gate, ...]:
        """All gates in topological order (inputs before consumers)."""
        return tuple(self._gates[g] for g in self._order)

    def __len__(self) -> int:
        return len(self._gates)

    # ------------------------------------------------------------------

    def is_monotone(self) -> bool:
        """No NOT gates anywhere."""
        return all(g.kind != NOT for g in self._gates.values())

    def depth(self) -> int:
        """Longest path length, NOT-on-input gates not counted (§2)."""
        cost: Dict[str, int] = {}
        for gate_id in self._order:
            gate = self._gates[gate_id]
            if gate.kind == INPUT:
                cost[gate_id] = 0
            elif gate.kind == NOT:
                (source,) = gate.inputs
                counts = 0 if self._gates[source].kind == INPUT else 1
                cost[gate_id] = cost[source] + counts
            else:
                cost[gate_id] = 1 + max(cost[s] for s in gate.inputs)
        return cost[self._output]

    def level(self, gate_id: str) -> int:
        """Longest distance from the inputs (inputs are level 0)."""
        cost: Dict[str, int] = {}
        for current in self._order:
            gate = self._gates[current]
            if gate.kind == INPUT:
                cost[current] = 0
            else:
                cost[current] = 1 + max(cost[s] for s in gate.inputs)
        return cost[gate_id]

    def is_leveled(self) -> bool:
        """Every gate's inputs sit exactly one level below it."""
        cost: Dict[str, int] = {}
        for current in self._order:
            gate = self._gates[current]
            if gate.kind == INPUT:
                cost[current] = 0
            else:
                levels = {cost[s] for s in gate.inputs}
                if len(levels) != 1:
                    return False
                cost[current] = levels.pop() + 1
        return True

    # ------------------------------------------------------------------

    def evaluate(self, true_inputs: AbstractSet[str]) -> bool:
        """Evaluate with exactly the gates in *true_inputs* set to 1."""
        stray = set(true_inputs) - set(self._inputs)
        if stray:
            raise CircuitError(f"unknown inputs: {sorted(stray)}")
        value: Dict[str, bool] = {}
        for gate_id in self._order:
            gate = self._gates[gate_id]
            if gate.kind == INPUT:
                value[gate_id] = gate_id in true_inputs
            elif gate.kind == NOT:
                value[gate_id] = not value[gate.inputs[0]]
            elif gate.kind == AND:
                value[gate_id] = all(value[s] for s in gate.inputs)
            else:
                value[gate_id] = any(value[s] for s in gate.inputs)
        return value[self._output]

    def __repr__(self) -> str:
        return (
            f"Circuit({len(self._gates)} gates, {len(self._inputs)} inputs, "
            f"depth={self.depth()}, output={self._output!r})"
        )


class CircuitBuilder:
    """Incremental circuit construction with auto-generated gate ids."""

    def __init__(self) -> None:
        self._gates: List[Gate] = []
        self._ids: set = set()
        self._counter = 0

    def _fresh(self, prefix: str) -> str:
        while True:
            candidate = f"{prefix}{self._counter}"
            self._counter += 1
            if candidate not in self._ids:
                return candidate

    def _add(self, gate: Gate) -> str:
        if gate.gate_id in self._ids:
            raise CircuitError(f"duplicate gate id {gate.gate_id!r}")
        self._ids.add(gate.gate_id)
        self._gates.append(gate)
        return gate.gate_id

    def input(self, name: Optional[str] = None) -> str:
        """Add an input gate; returns its id."""
        return self._add(Gate(name or self._fresh("x"), INPUT))

    def and_(self, *sources: str, name: Optional[str] = None) -> str:
        """Add an AND gate over *sources*; returns its id."""
        return self._add(Gate(name or self._fresh("g"), AND, tuple(sources)))

    def or_(self, *sources: str, name: Optional[str] = None) -> str:
        """Add an OR gate over *sources*; returns its id."""
        return self._add(Gate(name or self._fresh("g"), OR, tuple(sources)))

    def not_(self, source: str, name: Optional[str] = None) -> str:
        """Add a NOT gate over *source*; returns its id."""
        return self._add(Gate(name or self._fresh("g"), NOT, (source,)))

    def build(self, output: str) -> Circuit:
        """Finalize with *output* as the output gate."""
        return Circuit(self._gates, output)
