"""CNF formulas (clause sets) with the 2-CNF / 3-CNF special cases.

W[1] is defined through weighted satisfiability of 3-CNF formulas; the
paper's upper bound for conjunctive queries produces *2-CNF with only
negative literals* ("the set of clauses ¬z ∨ ¬z'"), whose weighted
satisfiability is an independent-set search — both structures are
first-class here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..errors import ReproError
from .circuit import Circuit, CircuitBuilder
from .formulas import BoolAnd, BoolFormula, BoolNot, BoolOr, BoolVar


class CNFError(ReproError):
    """Structural problem in a CNF definition."""


@dataclass(frozen=True)
class Literal:
    """A variable or its negation."""

    variable: str
    positive: bool = True

    def negate(self) -> "Literal":
        return Literal(self.variable, not self.positive)

    def satisfied_by(self, true_vars: AbstractSet[str]) -> bool:
        return (self.variable in true_vars) == self.positive

    def __repr__(self) -> str:
        return self.variable if self.positive else f"~{self.variable}"


Clause = Tuple[Literal, ...]


class CNF:
    """An immutable conjunction of clauses (disjunctions of literals).

    *variables* optionally declares the variable universe explicitly; it
    must contain every variable occurring in a clause.  Declaring the
    universe matters for *weighted* satisfiability, where variables that
    appear in no clause are still legitimate choices (the CQ→2-CNF
    reduction produces such variables when an atom has exactly one
    candidate tuple).
    """

    __slots__ = ("clauses", "_declared")

    def __init__(
        self,
        clauses: Iterable[Iterable[Literal]],
        variables: Optional[Iterable[str]] = None,
    ) -> None:
        built: List[Clause] = []
        for clause in clauses:
            clause_tuple = tuple(clause)
            if not clause_tuple:
                raise CNFError("empty clause (unsatisfiable) is not representable")
            built.append(clause_tuple)
        self.clauses: Tuple[Clause, ...] = tuple(built)
        self._declared: Optional[FrozenSet[str]] = (
            frozenset(variables) if variables is not None else None
        )
        if self._declared is not None:
            missing = self._occurring() - self._declared
            if missing:
                raise CNFError(
                    f"clauses mention undeclared variables: {sorted(missing)}"
                )

    # ------------------------------------------------------------------

    def _occurring(self) -> FrozenSet[str]:
        return frozenset(
            literal.variable for clause in self.clauses for literal in clause
        )

    def variables(self) -> FrozenSet[str]:
        if self._declared is not None:
            return self._declared
        return self._occurring()

    def max_clause_width(self) -> int:
        return max((len(c) for c in self.clauses), default=0)

    def is_kcnf(self, k: int) -> bool:
        """Every clause has at most k literals."""
        return self.max_clause_width() <= k

    def all_literals_negative(self) -> bool:
        """True for the conflict-clause CNFs of the paper's CQ reduction."""
        return all(
            not literal.positive for clause in self.clauses for literal in clause
        )

    def evaluate(self, true_vars: AbstractSet[str]) -> bool:
        return all(
            any(literal.satisfied_by(true_vars) for literal in clause)
            for clause in self.clauses
        )

    def size(self) -> int:
        return sum(len(c) for c in self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)

    # ------------------------------------------------------------------

    def to_formula(self) -> BoolFormula:
        """The equivalent Boolean formula (AND of ORs of literals)."""
        def literal_formula(literal: Literal) -> BoolFormula:
            leaf = BoolVar(literal.variable)
            return leaf if literal.positive else BoolNot(leaf)

        disjunctions: List[BoolFormula] = []
        for clause in self.clauses:
            parts = [literal_formula(l) for l in clause]
            disjunctions.append(parts[0] if len(parts) == 1 else BoolOr(parts))
        if not disjunctions:
            raise CNFError("empty CNF has no formula form here")
        return disjunctions[0] if len(disjunctions) == 1 else BoolAnd(disjunctions)

    def to_circuit(self) -> Circuit:
        """A depth-2 circuit (AND of ORs; NOTs on inputs are not counted)."""
        builder = CircuitBuilder()
        input_ids: Dict[str, str] = {}
        negated_ids: Dict[str, str] = {}
        for name in sorted(self.variables()):
            input_ids[name] = builder.input(name)
        clause_ids = []
        for clause in self.clauses:
            literal_ids = []
            for literal in clause:
                if literal.positive:
                    literal_ids.append(input_ids[literal.variable])
                else:
                    if literal.variable not in negated_ids:
                        negated_ids[literal.variable] = builder.not_(
                            input_ids[literal.variable]
                        )
                    literal_ids.append(negated_ids[literal.variable])
            clause_ids.append(builder.or_(*literal_ids))
        return builder.build(builder.and_(*clause_ids))

    def __repr__(self) -> str:
        inner = " & ".join(
            "(" + " | ".join(repr(l) for l in clause) + ")"
            for clause in self.clauses[:6]
        )
        suffix = " & ..." if len(self.clauses) > 6 else ""
        return f"CNF[{len(self.clauses)} clauses: {inner}{suffix}]"


def negative_pair(a: str, b: str) -> Clause:
    """The conflict clause ¬a ∨ ¬b."""
    return (Literal(a, False), Literal(b, False))
