"""ENGINE — the adaptive planner on a mixed structural workload.

The acceptance claim of the engine PR: on a workload mixing acyclic,
cyclic/bounded-treewidth, inequality and redundant-atom queries, the
adaptive ``QueryEngine`` (analyze → plan → cache → dispatch) matches the
best hand-picked evaluator per query (within noise) and beats the
always-naive policy by a growing factor overall, while the plan cache makes
repeat executions of a parameterized query measurably cheaper than the
first.

Every timing — hand-picked baselines included — runs through
``QueryEngine.execute`` (the hand-picked rows force ``evaluator=...``), so
the benchmark exercises exactly one code path.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_adaptive.py
    PYTHONPATH=src python benchmarks/bench_engine_adaptive.py --smoke  # CI

``--smoke`` skips the perf assertions (CI machines are noisy; the
regression gate applies its own tolerance instead); ``--json PATH`` writes
the machine-readable report (``BENCH_engine_adaptive.json`` by default in
full mode).
"""

from __future__ import annotations

import argparse
import sys
from itertools import combinations
from typing import Any, Dict, List, Optional, Tuple

from repro import Database, QueryEngine
from repro.benchlib import (
    add_json_argument,
    emit_json_report,
    json_report_payload,
    print_table,
    speedup,
    time_thunk,
)
from repro.engine import NAIVE
from repro.operations import EXECUTE, operations_of
from repro.parametric.problems import CliqueInstance
from repro.query import Atom, ConjunctiveQuery
from repro.query.terms import Variable
from repro.reductions import clique_to_cq
from repro.workloads import (
    chain_database,
    cycle_query,
    path_neq_query,
    path_query,
    random_graph,
    star_database,
    star_query,
)


def _graph_db(n: int, p: float, seed: int) -> Database:
    """A symmetric edge relation over a random graph."""
    edges = list(random_graph(n, p, seed=seed).edges())
    return Database.from_tuples({"E": edges + [(b, a) for a, b in edges]})


def _redundant_clique_query() -> Tuple[ConjunctiveQuery, Database]:
    """A 5-clique asked twice (relations E and F per edge): 20 atoms but
    only 10 distinct variable sets — the parameter-v grouping workload."""
    edges = list(random_graph(10, 0.6, seed=4).edges())
    rows = edges + [(b, a) for a, b in edges]
    database = Database.from_tuples({"E": rows, "F": rows})
    variables = [Variable(f"x{i}") for i in range(5)]
    atoms = []
    for i, j in combinations(range(5), 2):
        atoms.append(Atom("E", (variables[i], variables[j])))
        atoms.append(Atom("F", (variables[i], variables[j])))
    return ConjunctiveQuery((), atoms, head_name="K5"), database


def mixed_workload() -> List[Dict[str, Any]]:
    """(name, query, database, hand-picked evaluator candidates)."""
    triangle = clique_to_cq(CliqueInstance(random_graph(24, 0.5, seed=0), 3))
    k5_query, k5_db = _redundant_clique_query()
    return [
        {
            "name": "path4_acyclic",
            "query": path_query(4, head_arity=1),
            "database": chain_database(layers=5, width=16, p=0.25, seed=3),
            "candidates": ("naive", "yannakakis"),
        },
        {
            "name": "path5_wide",
            "query": path_query(5, head_arity=1),
            "database": chain_database(layers=6, width=24, p=0.25, seed=3),
            "candidates": ("naive", "yannakakis"),
        },
        {
            "name": "star4_acyclic",
            "query": star_query(4),
            "database": star_database(4, 16, seed=1),
            "candidates": ("naive", "yannakakis"),
        },
        {
            "name": "triangle_clique_n24",
            "query": triangle.query,
            "database": triangle.database,
            "candidates": ("naive", "treewidth"),
        },
        {
            "name": "cycle4_n60",
            "query": cycle_query(4),
            "database": _graph_db(60, 0.15, seed=2),
            "candidates": ("naive", "treewidth"),
        },
        {
            "name": "cycle6_n40",
            "query": cycle_query(6),
            "database": _graph_db(40, 0.15, seed=2),
            "candidates": ("naive", "treewidth"),
        },
        {
            "name": "path3_neq2",
            "query": path_neq_query(3, 2, seed=1),
            "database": chain_database(layers=5, width=16, p=0.25, seed=3),
            "candidates": ("naive", "inequality"),
        },
        {
            "name": "redundant_k5",
            "query": k5_query,
            "database": k5_db,
            "candidates": ("naive", "bounded-variable"),
        },
    ]


def run_mixed(
    engine: QueryEngine, repeats: int
) -> Tuple[List[Dict[str, Any]], Dict[str, float]]:
    """Per-query adaptive-vs-hand-picked timings + workload totals."""
    records: List[Dict[str, Any]] = []
    engine_total = 0.0
    naive_total = 0.0
    for item in mixed_workload():
        query, database = item["query"], item["database"]
        plan = engine.plan_for(query, database)

        evaluators: Dict[str, float] = {}
        reference = None
        for candidate in item["candidates"]:
            seconds, result = time_thunk(
                lambda c=candidate: engine.execute(query, database, evaluator=c),
                repeats=repeats,
            )
            evaluators[candidate] = seconds
            if reference is None:
                reference = result
            else:
                assert result == reference, (
                    f"{item['name']}: {candidate} disagrees with "
                    f"{item['candidates'][0]}"
                )

        engine.execute(query, database)  # warm the plan cache entry
        engine_seconds, engine_result = time_thunk(
            lambda: engine.execute(query, database), repeats=repeats
        )
        assert engine_result == reference, f"{item['name']}: engine disagrees"

        best_evaluator = min(evaluators, key=evaluators.get)
        best_seconds = evaluators[best_evaluator]
        records.append(
            {
                "name": item["name"],
                "class": plan.structural_class,
                "chosen": plan.evaluator,
                "evaluators": {
                    name: {"seconds": seconds}
                    for name, seconds in evaluators.items()
                },
                "best_evaluator": best_evaluator,
                "best_seconds": best_seconds,
                "engine_seconds": engine_seconds,
                "engine_over_best": round(
                    engine_seconds / max(best_seconds, 1e-9), 3
                ),
            }
        )
        engine_total += engine_seconds
        naive_total += evaluators[NAIVE]
    overall = {
        "engine_total_seconds": engine_total,
        "always_naive_total_seconds": naive_total,
        "speedup_vs_always_naive": round(speedup(naive_total, engine_total), 2),
    }
    return records, overall


def run_plan_cache(repeats: int) -> Dict[str, Any]:
    """Parameterized-query amortization: first execution (analysis + cost
    model + cache miss) vs repeats under other constant bindings (hits)."""
    database = chain_database(layers=5, width=16, p=0.25, seed=3)
    query = path_query(4, head_arity=1)
    starts = sorted({row[0] for row in database["E"].rows})

    # Warm the kernel's per-relation data indexes with a throwaway engine so
    # the measured difference below is *planning*, not index construction.
    QueryEngine().contains(query, database, (starts[0],))

    engine = QueryEngine()
    first_seconds, _ = time_thunk(
        lambda: engine.contains(query, database, (starts[0],)), repeats=1
    )
    bindings = (starts * ((repeats * 40) // len(starts) + 1))[: repeats * 40]

    def run_bindings():
        for value in bindings:
            engine.contains(query, database, (value,))

    total_seconds, _ = time_thunk(run_bindings, repeats=1)
    repeat_seconds = total_seconds / len(bindings)
    stats = engine.cache_stats
    return {
        "first_execution_seconds": first_seconds,
        "repeat_execution_seconds": repeat_seconds,
        "first_over_repeat": round(first_seconds / max(repeat_seconds, 1e-9), 2),
        "hits": stats.hits,
        "misses": stats.misses,
    }


def run_batch(repeats: int) -> Dict[str, Any]:
    """Same-shape batches: one plan for the whole batch vs per-query plans."""
    database = chain_database(layers=5, width=16, p=0.25, seed=3)
    query = path_query(4, head_arity=1)
    starts = sorted({row[0] for row in database["E"].rows})[:24]
    batch = [query.decision_instance((value,)) for value in starts]

    operations = operations_of(EXECUTE, batch)
    batch_seconds, results = time_thunk(
        lambda: QueryEngine().run_batch(operations, database), repeats=repeats
    )

    def fresh_engines():
        return [QueryEngine().execute(member, database) for member in batch]

    fresh_seconds, fresh_results = time_thunk(fresh_engines, repeats=repeats)
    assert results == fresh_results
    return {
        "batch_size": len(batch),
        "batched_seconds": batch_seconds,
        "fresh_engine_per_query_seconds": fresh_seconds,
        "amortization_factor": round(
            speedup(fresh_seconds, batch_seconds), 2
        ),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="skip perf assertions and the default JSON write — the CI "
        "configuration (timings stay best-of-3 for the regression gate)",
    )
    add_json_argument(parser)
    args = parser.parse_args(argv)
    # Best-of-3 in smoke mode too: the CI gate compares these timings
    # against the committed best-of-3 baseline and single shots are noise.
    repeats = 3

    engine = QueryEngine()
    records, overall = run_mixed(engine, repeats)
    cache_section = run_plan_cache(repeats)
    batch_section = run_batch(repeats)

    print_table(
        (
            "query",
            "class",
            "chosen",
            "best hand-picked",
            "best s",
            "engine s",
            "engine/best",
        ),
        [
            (
                r["name"],
                r["class"],
                r["chosen"],
                r["best_evaluator"],
                r["best_seconds"],
                r["engine_seconds"],
                r["engine_over_best"],
            )
            for r in records
        ],
        title=f"Adaptive engine vs hand-picked evaluators (best of {repeats})",
    )
    print_table(
        ("engine total s", "always-naive total s", "speedup"),
        [
            (
                overall["engine_total_seconds"],
                overall["always_naive_total_seconds"],
                overall["speedup_vs_always_naive"],
            )
        ],
        title="Mixed workload totals",
    )
    print_table(
        ("first exec s", "repeat exec s", "first/repeat", "hits", "misses"),
        [
            (
                cache_section["first_execution_seconds"],
                cache_section["repeat_execution_seconds"],
                cache_section["first_over_repeat"],
                cache_section["hits"],
                cache_section["misses"],
            )
        ],
        title="Plan cache: parameterized path query over its bindings",
    )
    print_table(
        ("batch size", "batched s", "fresh-engine s", "amortization"),
        [
            (
                batch_section["batch_size"],
                batch_section["batched_seconds"],
                batch_section["fresh_engine_per_query_seconds"],
                batch_section["amortization_factor"],
            )
        ],
        title="execute_batch: shape-grouped planning",
    )

    if not args.smoke:
        # Full-run acceptance: the adaptive engine stays close to the best
        # hand-picked evaluator everywhere and far ahead of always-naive.
        assert overall["speedup_vs_always_naive"] >= 2.0, overall
        worst = max(records, key=lambda r: r["engine_over_best"])
        assert worst["engine_over_best"] <= 1.25, worst
        assert (
            cache_section["repeat_execution_seconds"]
            < cache_section["first_execution_seconds"]
        ), cache_section

    output = args.json
    if output is None and not args.smoke:
        output = "BENCH_engine_adaptive.json"
    payload = json_report_payload(
        "engine_adaptive",
        smoke=args.smoke,
        repeats=repeats,
        queries=records,
        overall=overall,
        plan_cache=cache_section,
        batch=batch_section,
    )
    emit_json_report(output, payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
