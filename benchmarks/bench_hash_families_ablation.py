"""T2-ABL-HASH — ablation: hash-family strategy inside Theorem 2.

Compares, on the same acyclic ≠-workload:

* the deterministic greedy k-perfect family (exact; our default),
* the exhaustive family (exact oracle; explodes with |D|),
* the Monte-Carlo family at several confidence levels (one-sided error).

Reported: family size, end-to-end evaluation time, and answer recall
against the naive ground truth.  The paper's trade-off reproduces: random
families need ~c·e^k functions for confidence c, the perfect family is
about as large but has no error, and exhaustive enumeration is only viable
on tiny domains.
"""

from repro.benchlib import print_table, time_thunk
from repro.evaluation import NaiveEvaluator
from repro.inequalities import (
    AcyclicInequalityEvaluator,
    ExhaustiveHashFamily,
    GreedyPerfectHashFamily,
    RandomHashFamily,
    build_engine,
)
from repro.workloads import chain_database, path_neq_query


def test_hash_family_ablation(benchmark):
    query = path_neq_query(3, 2, seed=3)
    db = chain_database(layers=4, width=4, p=0.7, seed=5)
    truth = NaiveEvaluator().evaluate(query, db)
    assert not truth.is_empty()

    engine = build_engine(query, db)
    k = len(engine.hashed_variables)
    domain = AcyclicInequalityEvaluator().relevant_domain(engine)

    strategies = [
        ("greedy-perfect", GreedyPerfectHashFamily(seed=2)),
        ("exhaustive", ExhaustiveHashFamily()),
        ("random c=1", RandomHashFamily(confidence=1.0, seed=7)),
        ("random c=3", RandomHashFamily(confidence=3.0, seed=7)),
        ("random c=6", RandomHashFamily(confidence=6.0, seed=7)),
    ]

    rows = []
    for name, family in strategies:
        try:
            size = len(list(family.functions(domain, k)))
        except Exception:
            rows.append((name, "n/a", "n/a", "n/a", "domain too large"))
            continue
        evaluator = AcyclicInequalityEvaluator(family)
        seconds, answers = time_thunk(
            lambda: evaluator.evaluate(query, db), repeats=1
        )
        recall = (
            len(answers.rows & truth.rows) / max(1, len(truth.rows))
        )
        exact = "exact" if family.exact else "Monte-Carlo"
        rows.append((name, size, seconds, f"{recall:.2f}", exact))
        if family.exact:
            assert answers == truth
        else:
            assert answers.rows <= truth.rows  # never a false positive

    print_table(
        ("family", "|family|", "seconds", "recall", "guarantee"),
        rows,
        title=f"Hash-family ablation (k = {k}, |relevant domain| = {len(domain)})",
    )

    evaluator = AcyclicInequalityEvaluator(GreedyPerfectHashFamily(seed=2))
    benchmark(lambda: evaluator.evaluate(query, db))
