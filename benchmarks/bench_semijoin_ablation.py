"""T2-ABL-SEMI — ablation: pushing ≠-selections down vs checking at the root.

DESIGN.md calls out two design choices in the Theorem 2 engine:

1. σ_F *pushed down* the join tree at every merge (the paper's Algorithm 1)
   versus the carry-to-root mode of the §5 formula extension, which defers
   all inequality checking to a single root selection — same answers,
   bigger intermediates.
2. Join algorithm: hash join versus the paper's sort-merge accounting.

Both ablations run on the same conjunctive ≠-workload and must agree with
the ground truth; the table reports the cost difference.
"""

from repro.benchlib import print_table, time_thunk
from repro.evaluation import NaiveEvaluator, YannakakisEvaluator
from repro.inequalities import (
    AcyclicInequalityEvaluator,
    FormulaInequalityEvaluator,
    GreedyPerfectHashFamily,
)
from repro.query import conjunction_of, parse_query
from repro.relational import hash_join, sort_merge_join
from repro.workloads import chain_database, path_query


def test_pushdown_versus_root_check(benchmark):
    db = chain_database(layers=5, width=6, p=0.6, seed=8)
    base = parse_query(
        "G(x0) :- E(x0, x1), E(x1, x2), E(x2, x3), E(x3, x4)."
    )
    with_ineqs = parse_query(
        "G(x0) :- E(x0, x1), E(x1, x2), E(x2, x3), E(x3, x4), "
        "x0 != x2, x1 != x4."
    )
    phi = conjunction_of(list(with_ineqs.inequalities))
    truth = NaiveEvaluator().evaluate(with_ineqs, db)

    pushdown = AcyclicInequalityEvaluator(GreedyPerfectHashFamily(seed=1))
    root_check = FormulaInequalityEvaluator(GreedyPerfectHashFamily(seed=1))

    t_push, r_push = time_thunk(lambda: pushdown.evaluate(with_ineqs, db), repeats=1)
    t_root, r_root = time_thunk(lambda: root_check.evaluate(base, phi, db), repeats=1)
    assert r_push == truth
    assert r_root == truth

    rows = [
        ("pushed-down sigma_F (Algorithm 1)", t_push, r_push.cardinality),
        ("carry-to-root + root selection", t_root, r_root.cardinality),
    ]
    print_table(
        ("variant", "seconds", "answers"),
        rows,
        title="Ablation: inequality selection placement",
    )

    # Join-algorithm ablation on plain acyclic evaluation.
    query = path_query(4, head_arity=1)
    join_rows = []
    for name, algorithm in (("hash", hash_join), ("sort_merge", sort_merge_join)):
        evaluator = YannakakisEvaluator(join_algorithm=algorithm)
        seconds, result = time_thunk(lambda: evaluator.evaluate(query, db), repeats=1)
        join_rows.append((name, seconds, result.cardinality))
    assert join_rows[0][2] == join_rows[1][2]
    print_table(
        ("join algorithm", "seconds", "answers"),
        join_rows,
        title="Ablation: join algorithm inside Yannakakis",
    )

    benchmark(lambda: pushdown.evaluate(with_ineqs, db))
