"""FIG1 — Figure 1 + Proposition 1: the four parametric problems.

Reproduces the paper's Figure 1 as a machine-checked object: the partial
order of (parameter q | v) × (fixed | variable schema), with the identity
map verified as a parametric reduction along every arc on concrete clique-
derived instances (hardness flows up, membership flows down).
"""

from repro.benchlib import print_table
from repro.parametric import (
    FIGURE_1_ARCS,
    Q_FIXED,
    Q_VARIABLE,
    V_FIXED,
    V_VARIABLE,
    easier_than,
    harder_than,
)
from repro.parametric.problems import CliqueInstance
from repro.reductions import (
    CQ_EVALUATION_Q,
    CQ_EVALUATION_V,
    clique_to_cq,
)
from repro.workloads import graph_suite


def corner_problem(parametrization):
    """The evaluation problem at one Figure-1 corner (schema is a regime
    of the instance generator — the clique instances use a fixed schema,
    which is legal at every corner)."""
    return CQ_EVALUATION_Q if parametrization.parameter == "q" else CQ_EVALUATION_V


def test_fig1_identity_reductions(benchmark):
    instances = [
        clique_to_cq(CliqueInstance(g, k))
        for g in graph_suite(5, seed=7)
        for k in (2, 3)
    ]

    rows = []
    for lower, upper in FIGURE_1_ARCS:
        source = corner_problem(lower)
        target = corner_problem(upper)
        violations = 0
        for instance in instances:
            # Identity map: same instance, answers must agree and the
            # upper parameter must be bounded by the lower one (v ≤ q).
            if source.solve(instance) != target.solve(instance):
                violations += 1
            if target.parameter(instance) > source.parameter(instance):
                violations += 1
        rows.append(
            (lower.label, "→", upper.label, len(instances), violations)
        )

    print_table(
        ("easier", "", "harder", "instances", "violations"),
        rows,
        title="Figure 1: identity reductions along every arc (Proposition 1)",
    )
    assert all(row[-1] == 0 for row in rows)

    # Structural facts of the diamond.
    assert harder_than(Q_FIXED) == {Q_VARIABLE, V_FIXED, V_VARIABLE}
    assert easier_than(V_VARIABLE) == {Q_FIXED, Q_VARIABLE, V_FIXED}

    sample = instances[0]
    benchmark(lambda: CQ_EVALUATION_Q.solve(sample))
