"""CI benchmark regression gate: fresh ``--json`` run vs committed baseline.

Compares every timing leaf (keys containing ``seconds``) of a freshly
generated benchmark report against the committed ``BENCH_*.json`` baseline
and fails (exit 1) when any leaf regressed by more than the tolerance
factor.  Records inside lists are matched by their identity fields (``op``,
``n``, ``name``, ...), so a smoke run is comparable against a full-run
baseline: only the (identity, metric) pairs present in *both* reports are
compared, and sub-noise leaves (both sides under ``--min-seconds``) are
skipped.

Usage (what the CI gate job runs)::

    PYTHONPATH=src python benchmarks/bench_relation_kernel.py --smoke --json fresh.json
    PYTHONPATH=src python benchmarks/check_regressions.py \
        --baseline BENCH_relation_kernel.json --fresh fresh.json --tolerance 2.0

Verified locally: injecting an artificial slowdown into a fresh report
makes the gate exit nonzero (see the engine PR description).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional, Tuple

from repro.benchlib import print_table, read_json_report

#: Scalar fields that identify a record inside a list of measurements.
IDENTITY_KEYS = ("name", "op", "workload", "label", "n", "k", "size")


def flatten(payload: Any, prefix: str = "") -> Dict[str, Any]:
    """Leaf paths → values; list items are keyed by their identity fields."""
    leaves: Dict[str, Any] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            leaves.update(flatten(value, path))
        return leaves
    if isinstance(payload, list):
        for index, item in enumerate(payload):
            if isinstance(item, dict):
                identity = ",".join(
                    f"{key}={item[key]}"
                    for key in IDENTITY_KEYS
                    if key in item and isinstance(item[key], (str, int))
                )
                marker = identity or str(index)
            else:
                marker = str(index)
            leaves.update(flatten(item, f"{prefix}[{marker}]"))
        return leaves
    leaves[prefix] = payload
    return leaves


def timing_leaves(flat: Dict[str, Any]) -> Dict[str, float]:
    """The comparable leaves: numeric, and named ``*seconds*``."""
    out: Dict[str, float] = {}
    for path, value in flat.items():
        segment = path.rsplit(".", 1)[-1]
        if "seconds" not in segment or "seed" in segment:
            continue
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        out[path] = float(value)
    return out


def compare(
    baseline: Dict[str, Any],
    fresh: Dict[str, Any],
    tolerance: float,
    min_seconds: float,
) -> Tuple[List[Tuple[str, float, float, float, str]], int, int]:
    """(rows, compared, regressions) for every shared timing leaf."""
    base_times = timing_leaves(flatten(baseline))
    fresh_times = timing_leaves(flatten(fresh))
    shared = sorted(set(base_times) & set(fresh_times))
    rows: List[Tuple[str, float, float, float, str]] = []
    regressions = 0
    compared = 0
    for path in shared:
        expected = base_times[path]
        observed = fresh_times[path]
        if expected < min_seconds and observed < min_seconds:
            rows.append((path, expected, observed, 0.0, "sub-noise, skipped"))
            continue
        compared += 1
        ratio = observed / max(expected, 1e-12)
        if ratio > tolerance:
            regressions += 1
            status = f"REGRESSION (> {tolerance:g}x)"
        else:
            status = "ok"
        rows.append((path, expected, observed, round(ratio, 2), status))
    return rows, compared, regressions


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline", required=True, help="committed BENCH_*.json baseline"
    )
    parser.add_argument(
        "--fresh", required=True, help="freshly generated --json report"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="fail when fresh > baseline * tolerance (default 2.0)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=1e-4,
        help="skip leaves where both sides are below this (noise floor)",
    )
    args = parser.parse_args(argv)

    baseline = read_json_report(args.baseline)
    fresh = read_json_report(args.fresh)
    if not baseline:
        print(f"error: baseline {args.baseline} missing or empty", file=sys.stderr)
        return 2
    if not fresh:
        print(f"error: fresh report {args.fresh} missing or empty", file=sys.stderr)
        return 2
    if baseline.get("bench") != fresh.get("bench"):
        print(
            f"error: benchmark mismatch: baseline is "
            f"{baseline.get('bench')!r}, fresh is {fresh.get('bench')!r}",
            file=sys.stderr,
        )
        return 2

    rows, compared, regressions = compare(
        baseline, fresh, args.tolerance, args.min_seconds
    )
    print_table(
        ("metric", "baseline s", "fresh s", "ratio", "status"),
        rows,
        title=(
            f"Benchmark regression gate: {fresh.get('bench')} "
            f"(tolerance {args.tolerance:g}x, noise floor "
            f"{args.min_seconds:g}s)"
        ),
    )
    print(
        f"\n{compared} leaves compared, {len(rows) - compared} skipped, "
        f"{regressions} regression(s)"
    )
    if compared == 0:
        # A report-shape drift (renamed section / identity field) would
        # otherwise make the gate vacuously green while gating nothing.
        print(
            "error: no timing leaves shared between baseline and fresh "
            "report — regenerate the committed baseline",
            file=sys.stderr,
        )
        return 2
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
