"""PROTOCOL — a real server process over TCP vs one engine per client.

The acceptance claims of the networked protocol layer:

* **shared server beats isolated engines** — N TCP clients multiplexed
  onto one *subprocess* ``QueryServer`` (one plan cache, single-flight,
  micro-batching, fairness lanes — plus real wire costs: JSON framing,
  loopback TCP, process isolation) finish the mixed workload faster than
  the same clients each running their own in-process ``QueryEngine``;
* **the batching window survives the wire** — a same-shape flood
  pipelined over one connection with the server's micro-batch window
  open runs through N-wide lifted executions and beats the window-off
  server configuration;
* **binary relation frames shrink bulk payloads** — a connection that
  negotiates the dictionary-encoded binary framing receives the same
  result relations in measurably fewer bytes than the JSON lines, with
  byte-identical decoded results.

Results are byte-compared against sequential ``QueryEngine(parallel=False)``
execution before anything is timed; server processes are spawned once per
configuration and excluded from the timings.

Usage::

    PYTHONPATH=src python benchmarks/bench_protocol_server.py
    PYTHONPATH=src python benchmarks/bench_protocol_server.py --smoke  # CI

``--smoke`` keeps workload sizes identical (the regression gate compares
leaves by path) and skips only the perf assertions.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import signal
import subprocess
import sys
import tempfile
from typing import Any, Dict, List, Optional

import repro
from repro import QueryEngine
from repro.benchlib import (
    add_json_argument,
    emit_json_report,
    json_report_payload,
    print_table,
    speedup,
    time_thunk,
)
from repro.parallel import WorkerPool, default_worker_count
from repro.parallel.pool import THREADS
from repro.protocol import (
    AsyncQueryClient,
    QueryClient,
    Response,
    encode,
    encode_binary,
    encode_relation,
)
from repro.relational.io import save_database_json
from repro.workloads import chain_database
from repro.workloads.queries import path_query

CLIENTS = 16
PER_CLIENT = 8
FLOOD_REQUESTS = 64
BULK_REQUESTS = 24


def build_workload(clients: int, per_client: int, database) -> List[List]:
    """Per client, a list of decision instances: half *hot* (identical
    across clients — what single-flight and the plan cache exist for),
    half client-specific.  The same mix ``bench_service_async`` uses,
    now crossing a process boundary."""
    query = path_query(4, head_arity=1)
    starts = sorted({row[0] for row in database["E"].rows})
    hot = starts[:4]
    workload = []
    for client in range(clients):
        requests = []
        for i in range(per_client):
            if i % 2 == 0:
                value = hot[(i // 2) % len(hot)]
            else:
                value = starts[(client * per_client + i) % len(starts)]
            requests.append(query.decision_instance((value,)))
        workload.append(requests)
    return workload


class ServerProcess:
    """A ``repro.protocol.server`` subprocess bound to a free port."""

    def __init__(self, database_path: str, *extra_args: str) -> None:
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.protocol.server",
                "--port",
                "0",
                "--database",
                f"chain={database_path}",
                *extra_args,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        ready = self.process.stdout.readline()
        if not ready.startswith("QUERYSERVER READY"):
            stderr = ""
            if self.process.poll() is not None:
                stderr = self.process.stderr.read()
            raise RuntimeError(f"server failed to start: {ready!r} {stderr}")
        self.host = "127.0.0.1"
        self.port = int(ready.rsplit("port=", 1)[1])

    def stop(self) -> None:
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
            try:
                self.process.communicate(timeout=30)
            except subprocess.TimeoutExpired:  # pragma: no cover - safety net
                self.process.kill()
                self.process.communicate()

    def __enter__(self) -> "ServerProcess":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


async def tcp_clients_run(workload: List[List], host: str, port: int) -> List[List]:
    """Every client on its own TCP connection, requests sent in order."""
    clients = [
        await AsyncQueryClient.connect(host, port) for _ in range(len(workload))
    ]

    async def one_client(client, requests):
        return [await client.execute(query, "chain") for query in requests]

    try:
        return list(
            await asyncio.gather(
                *(
                    one_client(client, requests)
                    for client, requests in zip(clients, workload)
                )
            )
        )
    finally:
        for client in clients:
            await client.aclose()


async def per_client_run(workload: List[List], database) -> List[List]:
    """One private in-process engine per client: no shared plan cache, no
    coalescing, no batching, and no wire either — the strongest version
    of the configuration the server replaces."""
    pool = WorkerPool(max(2, default_worker_count()), THREADS)
    engines = [QueryEngine() for _ in workload]

    async def client(engine, requests):
        results = []
        for query in requests:
            results.append(
                await asyncio.wrap_future(pool.submit(engine.execute, query, database))
            )
        return results

    try:
        return list(
            await asyncio.gather(
                *(
                    client(engine, requests)
                    for engine, requests in zip(engines, workload)
                )
            )
        )
    finally:
        for engine in engines:
            engine.close()
        pool.close()


def run_clients_vs_isolated(
    repeats: int, database, database_path: str
) -> Dict[str, Any]:
    workload = build_workload(CLIENTS, PER_CLIENT, database)
    sequential = QueryEngine(parallel=False)
    reference = [
        [sequential.execute(q, database) for q in requests] for requests in workload
    ]

    with ServerProcess(database_path, "--batch-window", "0.002") as server:
        shared = asyncio.run(tcp_clients_run(workload, server.host, server.port))
        for got_list, want_list in zip(shared, reference):
            for got, want in zip(got_list, want_list):
                assert got == want and got.rows == want.rows, (
                    "server diverged from sequential"
                )
        shared_seconds, _ = time_thunk(
            lambda: asyncio.run(
                tcp_clients_run(workload, server.host, server.port)
            ),
            repeats=repeats,
        )
        with QueryClient(server.host, server.port) as probe:
            stats = probe.stats()

    isolated = asyncio.run(per_client_run(workload, database))
    assert isolated == reference, "per-client engines diverged from sequential"
    per_client_seconds, _ = time_thunk(
        lambda: asyncio.run(per_client_run(workload, database)),
        repeats=repeats,
    )
    return {
        "clients": CLIENTS,
        "requests": CLIENTS * PER_CLIENT,
        "shared_seconds": shared_seconds,
        "per_client_seconds": per_client_seconds,
        "shared_speedup": round(speedup(per_client_seconds, shared_seconds), 2),
        "coalesced": stats["service"]["coalesced"],
        "batched": stats["service"]["batched"],
    }


async def flood_run(instances: List, host: str, port: int) -> List:
    async with await AsyncQueryClient.connect(host, port) as client:
        return list(
            await asyncio.gather(
                *(client.execute(query, "chain") for query in instances)
            )
        )


def run_flood_with_window(
    repeats: int, database, database_path: str
) -> Dict[str, Any]:
    """Same-shape flood pipelined on one connection: window on vs off."""
    query = path_query(4, head_arity=1)
    starts = sorted({row[0] for row in database["E"].rows})
    instances = [
        query.decision_instance((starts[i % len(starts)],))
        for i in range(FLOOD_REQUESTS)
    ]
    sequential = QueryEngine(parallel=False)
    reference = [sequential.execute(q, database) for q in instances]

    timings = {}
    for label, window in [("window_on", "0.01"), ("window_off", "0.0")]:
        with ServerProcess(database_path, "--batch-window", window) as server:
            flood = asyncio.run(flood_run(instances, server.host, server.port))
            assert flood == reference, f"{label} flood diverged from sequential"
            timings[label], _ = time_thunk(
                lambda host=server.host, port=server.port: asyncio.run(
                    flood_run(instances, host, port)
                ),
                repeats=repeats,
            )
    return {
        "requests": len(instances),
        "window_off_seconds": timings["window_off"],
        "window_on_seconds": timings["window_on"],
        "batching_speedup": round(
            speedup(timings["window_off"], timings["window_on"]), 2
        ),
    }


async def bulk_run(instances: List, host: str, port: int, binary: bool) -> List:
    async with await AsyncQueryClient.connect(
        host, port, binary_frames=binary
    ) as client:
        assert client.binary_frames == binary
        return list(
            await asyncio.gather(
                *(client.execute(query, "chain") for query in instances)
            )
        )


def run_binary_frames(
    repeats: int, database, database_path: str
) -> Dict[str, Any]:
    """Bulk result relations over one connection: JSON lines vs the
    negotiated binary relation framing, same server process."""
    instances = [
        path_query(length, head_arity=2) for length in (2, 3, 4)
    ] * (BULK_REQUESTS // 3)
    sequential = QueryEngine(parallel=False)
    reference = [sequential.execute(q, database) for q in instances]

    with ServerProcess(database_path, "--batch-window", "0.0") as server:
        json_results = asyncio.run(
            bulk_run(instances, server.host, server.port, binary=False)
        )
        binary_results = asyncio.run(
            bulk_run(instances, server.host, server.port, binary=True)
        )
        assert json_results == reference, "JSON bulk run diverged from sequential"
        assert binary_results == reference, "binary bulk run diverged"
        json_seconds, _ = time_thunk(
            lambda: asyncio.run(
                bulk_run(instances, server.host, server.port, binary=False)
            ),
            repeats=repeats,
        )
        binary_seconds, _ = time_thunk(
            lambda: asyncio.run(
                bulk_run(instances, server.host, server.port, binary=True)
            ),
            repeats=repeats,
        )

    # Payload accounting: the exact bytes each framing puts on the wire
    # for the result relations of this workload.
    json_bytes = 0
    binary_bytes = 0
    for index, relation in enumerate(reference):
        response = Response(
            id=index, kind="relation", result=encode_relation(relation)
        )
        line = encode(response)
        frame = encode_binary(response)
        json_bytes += len(line)
        binary_bytes += len(frame) if frame is not None else len(line)
    return {
        "requests": len(instances),
        "json_seconds": json_seconds,
        "binary_seconds": binary_seconds,
        "json_payload_bytes": json_bytes,
        "binary_payload_bytes": binary_bytes,
        "payload_ratio": round(binary_bytes / json_bytes, 3),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="skip perf assertions — workload sizes and best-of-3 timings "
        "stay identical for the regression gate",
    )
    add_json_argument(parser)
    args = parser.parse_args(argv)
    repeats = 3

    # Wider than the in-process service bench: per-request evaluation has
    # to dominate the ~1 ms/request wire cost for the sharing comparison
    # to measure *sharing* rather than loopback TCP.
    database = chain_database(layers=6, width=72, p=0.22, seed=7)
    with tempfile.TemporaryDirectory() as tmp:
        database_path = os.path.join(tmp, "chain.json")
        save_database_json(database, database_path)
        concurrent = run_clients_vs_isolated(repeats, database, database_path)
        flood = run_flood_with_window(repeats, database, database_path)
        frames = run_binary_frames(repeats, database, database_path)

    print_table(
        ("clients", "requests", "shared TCP s", "per-client s", "speedup"),
        [
            (
                concurrent["clients"],
                concurrent["requests"],
                concurrent["shared_seconds"],
                concurrent["per_client_seconds"],
                concurrent["shared_speedup"],
            )
        ],
        title=(
            f"{CLIENTS} TCP clients on one subprocess QueryServer vs one "
            f"in-process engine per client (best of {repeats})"
        ),
    )
    print_table(
        ("requests", "window off s", "window on s", "speedup"),
        [
            (
                flood["requests"],
                flood["window_off_seconds"],
                flood["window_on_seconds"],
                flood["batching_speedup"],
            )
        ],
        title="Same-shape flood over one connection: server batch window on vs off",
    )
    print_table(
        ("requests", "json s", "binary s", "json bytes", "binary bytes", "ratio"),
        [
            (
                frames["requests"],
                frames["json_seconds"],
                frames["binary_seconds"],
                frames["json_payload_bytes"],
                frames["binary_payload_bytes"],
                frames["payload_ratio"],
            )
        ],
        title="Bulk result relations: JSON lines vs negotiated binary frames",
    )

    if not args.smoke:
        assert concurrent["shared_speedup"] >= 1.2, concurrent
        assert flood["batching_speedup"] >= 1.2, flood
        assert frames["payload_ratio"] <= 0.75, frames

    output = args.json
    if output is None and not args.smoke:
        output = "BENCH_protocol_server.json"
    payload = json_report_payload(
        "protocol_server",
        smoke=args.smoke,
        repeats=repeats,
        concurrent_clients=concurrent,
        flood=flood,
        binary_frames=frames,
    )
    emit_json_report(output, payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
