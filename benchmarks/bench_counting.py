"""COUNTING — the annotated Yannakakis pass vs materialize-then-count.

The acceptance claim of the counting PR: on large acyclic workloads,
``count(Q)`` costs reducer passes plus a linear fold — within 2x of
``decide(Q)`` wall time and an order of magnitude ahead of
``len(execute(Q).rows)``, whose join output it never builds.

The trichotomy adversaries keep the claim honest about its boundary
(Chen–Mengel): the *quantified star* Q(y1..yk) :- E(z,y1)..E(z,yk) has an
uncovered projection — #P-hard to count, the engine falls back to
evaluate-then-count — and the cyclic triangle is count-general.  Both are
timed so the fallback's cost (and the fast modes' advantage) is recorded,
not asserted away.

Usage::

    PYTHONPATH=src python benchmarks/bench_counting.py
    PYTHONPATH=src python benchmarks/bench_counting.py --smoke  # CI

``--smoke`` skips the perf assertions (the regression gate applies its own
tolerance); ``--json PATH`` writes the machine-readable report
(``BENCH_counting.json`` by default in full mode).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional

from repro import Database, QueryEngine
from repro.benchlib import (
    add_json_argument,
    emit_json_report,
    json_report_payload,
    print_table,
    speedup,
    time_thunk,
)
from repro.query import Atom, ConjunctiveQuery
from repro.query.terms import Variable
from repro.workloads import chain_database, path_query, random_graph


def quantified_star_query(arms: int) -> ConjunctiveQuery:
    """Q(y1..yk) :- E(z,y1)..E(z,yk): head uncovered, hub existential.

    The Chen–Mengel hard family — quantified star size grows with *arms*,
    so no fast counting mode applies however acyclic the body is.
    """
    hub = Variable("z")
    leaves = [Variable(f"y{i}") for i in range(1, arms + 1)]
    atoms = [Atom("E", (hub, leaf)) for leaf in leaves]
    return ConjunctiveQuery(tuple(leaves), atoms, head_name="QSTAR")


def star_edge_db(hubs: int, fanout: int) -> Database:
    return Database.from_tuples(
        {"E": [(h, hubs + h * fanout + i) for h in range(hubs) for i in range(fanout)]}
    )


def triangle_db(n: int, p: float, seed: int) -> Database:
    edges = list(random_graph(n, p, seed=seed).edges())
    return Database.from_tuples({"E": edges + [(b, a) for a, b in edges]})


def headed_triangle_query() -> ConjunctiveQuery:
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    atoms = [Atom("E", (x, y)), Atom("E", (y, z)), Atom("E", (z, x))]
    return ConjunctiveQuery((x,), atoms, head_name="TRI")


def acyclic_workload() -> List[Dict[str, Any]]:
    """Large acyclic instances where the fast modes apply.

    The full-mode rows are the headline: every variable exported, so the
    materialized answer is the whole join while the count is one fold.
    """
    wide = chain_database(layers=6, width=16, p=0.4, seed=5)
    deep = chain_database(layers=8, width=10, p=0.4, seed=9)
    return [
        {
            "name": "path5_full_wide",
            "query": path_query(5, head_arity=6),
            "database": wide,
        },
        {
            "name": "path7_full_deep",
            "query": path_query(7, head_arity=8),
            "database": deep,
        },
        {
            "name": "path5_covered",
            "query": path_query(5, head_arity=1),
            "database": wide,
        },
    ]


def run_fast_modes(engine: QueryEngine, repeats: int) -> List[Dict[str, Any]]:
    # count/decide run sub-millisecond here, so the count/decide ratio is
    # what noise hits hardest: warm both paths (plan cache + allocator),
    # then take best-of-many on the cheap thunks while the expensive
    # materialization keeps the shared *repeats*.
    cheap_repeats = max(repeats, 9)
    records: List[Dict[str, Any]] = []
    for item in acyclic_workload():
        query, database = item["query"], item["database"]
        plan = engine.plan_for(query, database)
        engine.count(query, database)
        engine.decide(query, database)
        count_seconds, total = time_thunk(
            lambda: engine.count(query, database), repeats=cheap_repeats
        )
        decide_seconds, _ = time_thunk(
            lambda: engine.decide(query, database), repeats=cheap_repeats
        )
        execute_seconds, answers = time_thunk(
            lambda: len(engine.execute(query, database).rows), repeats=repeats
        )
        assert total == answers, item["name"]
        records.append(
            {
                "name": item["name"],
                "count_mode": plan.count_mode,
                "answers": total,
                "count_seconds": count_seconds,
                "decide_seconds": decide_seconds,
                "execute_len_seconds": execute_seconds,
                "count_over_decide": round(
                    count_seconds / max(decide_seconds, 1e-9), 2
                ),
                "speedup_vs_materialize": round(
                    speedup(execute_seconds, count_seconds), 2
                ),
            }
        )
    return records


def run_adversaries(engine: QueryEngine, repeats: int) -> List[Dict[str, Any]]:
    """The hard side of the trichotomy: fallback timings, not fast claims."""
    cases = [
        {
            "name": "quantified_star_k3",
            "query": quantified_star_query(3),
            "database": star_edge_db(hubs=40, fanout=9),
        },
        {
            "name": "quantified_star_k4",
            "query": quantified_star_query(4),
            "database": star_edge_db(hubs=40, fanout=6),
        },
        {
            "name": "triangle_n80",
            "query": headed_triangle_query(),
            "database": triangle_db(80, 0.12, seed=3),
        },
    ]
    records: List[Dict[str, Any]] = []
    for item in cases:
        query, database = item["query"], item["database"]
        plan = engine.plan_for(query, database)
        count_seconds, total = time_thunk(
            lambda: engine.count(query, database), repeats=repeats
        )
        execute_seconds, answers = time_thunk(
            lambda: len(engine.execute(query, database).rows), repeats=repeats
        )
        assert total == answers, item["name"]
        records.append(
            {
                "name": item["name"],
                "count_mode": plan.count_mode,
                "answers": total,
                "count_seconds": count_seconds,
                "execute_len_seconds": execute_seconds,
            }
        )
    return records


def run_grouped(engine: QueryEngine, repeats: int) -> Dict[str, Any]:
    """Grouped counts on the covered workload vs grouping materialized rows."""
    from repro.evaluation import grouped_count_reference

    database = chain_database(layers=6, width=16, p=0.4, seed=5)
    query = path_query(5, head_arity=2)
    group = ("x0",)
    grouped_seconds, grouped = time_thunk(
        lambda: engine.grouped_count(query, database, group), repeats=repeats
    )
    naive_seconds, reference = time_thunk(
        lambda: grouped_count_reference(
            query, engine.execute(query, database), group
        ),
        repeats=repeats,
    )
    assert grouped == reference
    return {
        "groups": grouped.cardinality,
        "grouped_count_seconds": grouped_seconds,
        "materialize_group_seconds": naive_seconds,
        "speedup": round(speedup(naive_seconds, grouped_seconds), 2),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="skip perf assertions and the default JSON write — the CI "
        "configuration (timings stay best-of-3 for the regression gate)",
    )
    add_json_argument(parser)
    args = parser.parse_args(argv)
    repeats = 3

    with QueryEngine() as engine:
        fast = run_fast_modes(engine, repeats)
        hard = run_adversaries(engine, repeats)
        grouped = run_grouped(engine, repeats)

    print_table(
        (
            "workload",
            "mode",
            "answers",
            "count s",
            "decide s",
            "execute+len s",
            "count/decide",
            "vs materialize",
        ),
        [
            (
                r["name"],
                r["count_mode"],
                r["answers"],
                r["count_seconds"],
                r["decide_seconds"],
                r["execute_len_seconds"],
                r["count_over_decide"],
                r["speedup_vs_materialize"],
            )
            for r in fast
        ],
        title=f"Fast counting modes (best of {repeats})",
    )
    print_table(
        ("adversary", "mode", "answers", "count s", "execute+len s"),
        [
            (
                r["name"],
                r["count_mode"],
                r["answers"],
                r["count_seconds"],
                r["execute_len_seconds"],
            )
            for r in hard
        ],
        title="Trichotomy adversaries (fallback = evaluate-then-count)",
    )
    print_table(
        ("groups", "grouped_count s", "materialize+group s", "speedup"),
        [
            (
                grouped["groups"],
                grouped["grouped_count_seconds"],
                grouped["materialize_group_seconds"],
                grouped["speedup"],
            )
        ],
        title="Grouped counts (covered mode)",
    )

    if not args.smoke:
        # Acceptance: on the full-mode workloads the fold never builds the
        # join — 10x ahead of materialization, within 2x of decide.
        for record in fast:
            if record["count_mode"] == "count-full":
                assert record["count_over_decide"] <= 2.0, record
                assert record["speedup_vs_materialize"] >= 10.0, record
        # The adversaries cost what evaluation costs — the fallback must
        # not be *slower* than the materialization it reads through.
        for record in hard:
            assert record["count_seconds"] <= 2.0 * record[
                "execute_len_seconds"
            ], record

    output = args.json
    if output is None and not args.smoke:
        output = "BENCH_counting.json"
    payload = json_report_payload(
        "counting",
        smoke=args.smoke,
        repeats=repeats,
        fast_modes=fast,
        adversaries=hard,
        grouped=grouped,
    )
    emit_json_report(output, payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
