"""HAM — §5: NP-hard combined complexity when the query grows with the data.

The Hamiltonian-path reduction's query has n variables and C(n,2) ≠ atoms,
so the parameter is no longer small.  On *no*-instances the evaluator must
exhaust the search space, and the cost explodes with n; we use the union
of two cliques K_{n/2} ∪ K_{n/2} — never Hamiltonian, but crammed with
long simple paths, the adversarial case for backtracking.  For contrast, a
*fixed* ≠-query over the same growing graphs stays cheap (the regime
Theorem 2 addresses).
"""

from itertools import combinations

from repro.benchlib import print_table, time_thunk
from repro.evaluation import NaiveEvaluator
from repro.inequalities import AcyclicInequalityEvaluator
from repro.reductions import (
    hamiltonian_to_query_instance,
    has_hamiltonian_path,
)
from repro.workloads import Graph, path_neq_query
from repro.relational import Database


def two_cliques(n: int) -> Graph:
    """K_{n/2} ∪ K_{n/2}: no Hamiltonian path, many long simple paths."""
    half = n // 2
    edges = list(combinations(range(half), 2))
    edges += [(a + half, b + half) for a, b in combinations(range(half), 2)]
    return Graph(range(2 * half), edges)


def test_hamiltonian_combined_complexity_cliff(benchmark):
    naive = NaiveEvaluator()
    fixed_query = path_neq_query(2, 1, seed=0)  # fixed small parameter

    rows = []
    ham_times = []
    for n in (8, 10, 12):
        graph = two_cliques(n)
        assert not has_hamiltonian_path(graph)
        query, db = hamiltonian_to_query_instance(graph)
        ham_seconds, decided = time_thunk(
            lambda: naive.decide(query, db), repeats=1
        )
        assert not decided
        fixed_db = Database.from_tuples({"E": list(graph.directed_edges())})
        fixed_seconds, _ = time_thunk(
            lambda: AcyclicInequalityEvaluator().evaluate(fixed_query, fixed_db),
            repeats=1,
        )
        ham_times.append(ham_seconds)
        rows.append(
            (
                n,
                query.query_size(),
                len(query.inequalities),
                ham_seconds,
                fixed_seconds,
            )
        )

    print_table(
        ("n", "query size q", "!= atoms", "hamiltonian query (s)", "fixed k query (s)"),
        rows,
        title="Combined complexity: query growing with the database (no-instances)",
    )

    # The cliff: cost must grow sharply with n, and at the top of the sweep
    # the growing-parameter query must dominate the fixed-parameter one.
    assert ham_times[-1] > ham_times[0] * 5
    assert rows[-1][3] > rows[-1][4]

    graph = two_cliques(10)
    query, db = hamiltonian_to_query_instance(graph)
    benchmark(lambda: NaiveEvaluator().decide(query, db))
