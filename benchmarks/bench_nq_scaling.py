"""NQ — the paper's central thesis: generic evaluation runs in n^Θ(k).

Two sweeps on the k-clique query (the Theorem 1 hardness workload):

* n-sweep at fixed k: the fitted log–log exponent of the naive engine's
  time grows with k (k in the exponent of n);
* k-sweep at fixed n: time grows multiplicatively with k.

Contrast: vertex cover — an FPT problem — solved by the bounded search
tree shows a flat exponent in n for every k (f(k)·n, k *not* in the
exponent).  This is exactly the paper's FPT-versus-W[1] distinction.
"""

from repro import QueryEngine
from repro.benchlib import growth_exponent, print_table, time_thunk
from repro.parametric.problems import CliqueInstance, has_vertex_cover
from repro.reductions import clique_to_cq
from repro.workloads import random_graph

#: One engine for the module; the n^k rows force ``evaluator="naive"`` —
#: the generic algorithm's scaling is the *point* of this benchmark, and
#: the adaptive planner would otherwise route the clique query elsewhere.
_ENGINE = QueryEngine()


def clique_eval_seconds(n: int, k: int, seed: int = 0) -> float:
    graph = random_graph(n, 0.5, seed=seed)
    instance = clique_to_cq(CliqueInstance(graph, k))
    # Force full exploration with the generic backtracking evaluator.
    seconds, _ = time_thunk(
        lambda: _ENGINE.execute(
            instance.query, instance.database, evaluator="naive"
        ),
        repeats=1,
    )
    return seconds


def test_nq_scaling(benchmark):
    ns = (8, 12, 16, 24)

    rows = []
    exponents = {}
    for k in (2, 3):
        times = [clique_eval_seconds(n, k) for n in ns]
        exponent = growth_exponent(ns, times)
        exponents[k] = exponent
        rows.append((f"clique query, k={k}",) + tuple(times) + (exponent,))

    # FPT contrast: vertex cover at two parameter values — the fitted
    # exponent in n must NOT move with k (k lives in the f(k) factor).
    # Complete graphs keep every sweep point a no-instance (K_n needs a
    # cover of n−1 nodes), so the bounded search tree is fully explored and
    # the measured time is the clean O(2^k · n²) worst case.
    from repro.workloads import complete_graph

    vc_ns = (16, 24, 32, 48)  # larger graphs keep the timings out of noise
    vc_exponents = {}
    for k in (3, 6):
        vc_times = []
        for n in vc_ns:
            graph = complete_graph(n)
            seconds, covered = time_thunk(
                lambda g=graph, kk=k: has_vertex_cover(g, kk), repeats=3
            )
            assert not covered
            vc_times.append(seconds)
        vc_exponents[k] = growth_exponent(vc_ns, vc_times)
        rows.append(
            (f"vertex cover (FPT), k={k}",) + tuple(vc_times) + (vc_exponents[k],)
        )

    print_table(
        ("workload",) + tuple(f"n={n}" for n in ns) + ("fitted exponent",),
        rows,
        title="n^k shape: naive CQ evaluation vs an FPT baseline "
        "(vertex-cover rows use n = 16/24/32/48)",
    )

    # Shape assertions: raising k moves the clique query's exponent by about
    # +1 (k is in the exponent of n), while doubling the FPT problem's k
    # shifts its exponent far less (k lives in the f(k) factor).
    clique_gap = exponents[3] - exponents[2]
    vc_gap = abs(vc_exponents[6] - vc_exponents[3])
    assert clique_gap > 0.8
    assert clique_gap > vc_gap + 0.3

    benchmark(lambda: clique_eval_seconds(12, 3))
