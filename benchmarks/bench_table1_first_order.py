"""T1-FO — Theorem 1, row 3: first-order queries.

* parameter v: W[P]-hardness — monotone weighted circuit SAT ≤ FO
  evaluation with v = k + 2;
* parameter q: W[t]-hardness for every t — the same construction from
  depth-t instances;
* §4 extension: AW[P]-hardness via alternating blocks.
"""

import time

from repro.benchlib import print_table
from repro.circuits import CircuitBuilder
from repro.parametric.problems import (
    AlternatingWeightedCircuitInstance,
    WeightedCircuitInstance,
)
from repro.reductions import (
    ALTERNATING_CIRCUIT_TO_FO,
    CIRCUIT_TO_FO_V,
    make_depth_t_reduction,
)


def circuits():
    def two_pair():
        b = CircuitBuilder()
        xs = [b.input(f"i{j}") for j in range(4)]
        return b.build(b.or_(b.and_(xs[0], xs[1]), b.and_(xs[2], xs[3])))

    def and_of_ors():
        b = CircuitBuilder()
        xs = [b.input(f"i{j}") for j in range(4)]
        return b.build(b.and_(b.or_(xs[0], xs[1]), b.or_(xs[2], xs[3])))

    return [two_pair(), and_of_ors()]


def test_table1_first_order_row(benchmark):
    suite = [
        WeightedCircuitInstance(c, k) for c in circuits() for k in (1, 2)
    ]
    depth2 = make_depth_t_reduction(2)

    builder = CircuitBuilder()
    a, b, c, d = (builder.input(x) for x in "abcd")
    alternating_circuit = builder.build(
        builder.or_(builder.and_(a, c), builder.and_(a, d), builder.and_(b, c))
    )
    aw_suite = [
        AlternatingWeightedCircuitInstance(
            alternating_circuit, (("a", "b"), ("c", "d")), (1, 1)
        ),
        AlternatingWeightedCircuitInstance(
            alternating_circuit, (("b",), ("c", "d")), (1, 1)
        ),
    ]

    rows = []
    for reduction, instances in (
        (CIRCUIT_TO_FO_V, suite),
        (depth2, suite),
        (ALTERNATING_CIRCUIT_TO_FO, aw_suite),
    ):
        start = time.perf_counter()
        records = reduction.verify(instances)
        elapsed = time.perf_counter() - start
        rows.append(
            (
                reduction.name,
                len(records),
                sum(1 for r in records if r.expected),
                max(r.parameter_out for r in records),
                elapsed,
                "verified",
            )
        )

    print_table(
        ("reduction", "instances", "yes-instances", "max k'/q'", "seconds", "status"),
        rows,
        title="Theorem 1, first-order row: W[t]/W[P]/AW[P] hardness evidence",
    )

    sample = suite[0]
    benchmark(lambda: CIRCUIT_TO_FO_V.solve_via_target(sample))
