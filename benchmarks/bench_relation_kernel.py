"""KERNEL — micro-benchmarks for the columnar relational kernel.

Times the four primitive operations every engine in the library bottoms out
in — project, semijoin, natural join, and point index probes — at n ∈
{1e3, 1e4, 1e5}, plus the two end-to-end acceptance workloads the kernel
rewrite targets (the Yannakakis path query and the naive clique query).
Results are written as machine-readable JSON (``BENCH_relation_kernel.json``
by default) via :func:`repro.benchlib.write_json_report` so future PRs can
track the perf trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_relation_kernel.py
    PYTHONPATH=src python benchmarks/bench_relation_kernel.py --smoke  # CI, <60s

``--smoke`` restricts the sweep to n ≤ 1e4 (still best-of-3 — the CI
regression gate compares against the committed best-of-3 baseline) and
skips the JSON write unless ``--json``/``--output`` is given explicitly.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Any, Dict, List, Optional

from repro.benchlib import (
    add_json_argument,
    emit_json_report,
    json_report_payload,
    print_table,
    speedup,
    time_thunk,
)
from repro.evaluation import NaiveEvaluator, YannakakisEvaluator
from repro.parametric.problems import CliqueInstance
from repro.reductions import clique_to_cq
from repro.relational import Relation
from repro.workloads import chain_database, path_query, random_graph

#: Seed-kernel numbers for the acceptance workloads, measured on this
#: container immediately before the columnar-kernel rewrite (best of 3).
#: Kept so every rerun reports the speedup-over-seed trajectory.
SEED_BASELINE_SECONDS = {
    "yannakakis_path_len4_width16": 4.549e-3,
    "naive_clique_n24_k3": 1.904e-2,
}

FULL_SIZES = (1_000, 10_000, 100_000)
SMOKE_SIZES = (1_000, 10_000)


def _make_pair(n: int, seed: int = 7) -> tuple:
    """Two joinable three-column relations with ~unit join selectivity."""
    rng = random.Random(seed)
    domain = max(n, 16)
    left = Relation.from_rows(
        ("a", "b", "c"),
        {
            (rng.randrange(domain), rng.randrange(domain), rng.randrange(domain))
            for _ in range(n)
        },
    )
    right = Relation.from_rows(
        ("b", "c", "d"),
        {
            (rng.randrange(domain), rng.randrange(domain), rng.randrange(domain))
            for _ in range(n)
        },
    )
    return left, right


def run_micro(sizes, repeats: int) -> List[Dict[str, Any]]:
    """Time each kernel primitive at each size; returns one record per cell."""
    records: List[Dict[str, Any]] = []
    for n in sizes:
        left, right = _make_pair(n)
        rng = random.Random(11)
        probe_keys = [rng.randrange(max(n, 16)) for _ in range(1_000)]

        def project():
            return left.project(("a",))

        def semijoin_cold():
            # A fresh build side defeats the per-relation index cache, so
            # this includes one index construction.
            fresh = Relation._from_frozen(right.attributes, right.rows)
            return left.semijoin(fresh)

        left.semijoin(right)  # pre-warm: build right's index once

        def semijoin_warm():
            return left.semijoin(right)

        def join():
            return left.natural_join(right)

        def index_probe():
            total = 0
            for key in probe_keys:
                total += len(left.select_eq({"a": key}))
            return total

        cells = {
            "project": project,
            "semijoin_cold": semijoin_cold,
            "semijoin_warm": semijoin_warm,
            "natural_join": join,
            "index_probe_1k": index_probe,
        }
        for op, thunk in cells.items():
            seconds, _ = time_thunk(thunk, repeats=repeats)
            records.append({"op": op, "n": n, "seconds": seconds})
    return records


def run_acceptance(repeats: int) -> Dict[str, float]:
    """The two end-to-end workloads the acceptance criteria are pinned to."""
    db = chain_database(layers=5, width=16, p=0.25, seed=3)
    query = path_query(4, head_arity=1)
    yann_seconds, _ = time_thunk(
        lambda: YannakakisEvaluator().evaluate(query, db), repeats=repeats
    )

    graph = random_graph(24, 0.5, seed=0)
    instance = clique_to_cq(CliqueInstance(graph, 3))
    naive_seconds, _ = time_thunk(
        lambda: NaiveEvaluator().satisfying_assignments(
            instance.query, instance.database
        ),
        repeats=repeats,
    )
    return {
        "yannakakis_path_len4_width16": yann_seconds,
        "naive_clique_n24_k3": naive_seconds,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes (n <= 1e4), still best-of-3 — the <60s CI "
        "configuration",
    )
    parser.add_argument(
        "--output", default=None,
        help="deprecated alias for --json (default BENCH_relation_kernel.json; "
        "omitted in --smoke mode unless given)",
    )
    add_json_argument(parser)
    args = parser.parse_args(argv)

    sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    # Best-of-3 even in smoke mode: the CI regression gate compares these
    # numbers against the committed best-of-3 baseline, and single-shot
    # timings are too noisy to gate on.
    repeats = 3

    micro = run_micro(sizes, repeats)
    acceptance = run_acceptance(repeats)

    by_op: Dict[str, List] = {}
    for record in micro:
        by_op.setdefault(record["op"], []).append(record)
    print_table(
        ("op",) + tuple(f"n={n}" for n in sizes),
        [
            (op,) + tuple(r["seconds"] for r in sorted(rows, key=lambda r: r["n"]))
            for op, rows in by_op.items()
        ],
        title="Relational kernel micro-benchmarks (seconds, best of "
        f"{repeats})",
    )
    print_table(
        ("workload", "seed s", "now s", "speedup"),
        [
            (
                name,
                SEED_BASELINE_SECONDS[name],
                seconds,
                speedup(SEED_BASELINE_SECONDS[name], seconds),
            )
            for name, seconds in acceptance.items()
        ],
        title="Acceptance workloads vs the seed kernel",
    )

    output = args.json or args.output
    if output is None and not args.smoke:
        output = "BENCH_relation_kernel.json"
    payload = json_report_payload(
        "relation_kernel",
        smoke=args.smoke,
        repeats=repeats,
        microbenchmarks=micro,
        acceptance_workloads={
            name: {
                "seed_seconds": SEED_BASELINE_SECONDS[name],
                "kernel_seconds": seconds,
                "speedup_over_seed": round(
                    speedup(SEED_BASELINE_SECONDS[name], seconds), 2
                ),
            }
            for name, seconds in acceptance.items()
        },
    )
    emit_json_report(output, payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
