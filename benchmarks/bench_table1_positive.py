"""T1-POS — Theorem 1, row 2: positive queries.

* parameter q: W[1]-complete — DNF expansion into conjunctive queries
  (Turing form) and footnote 2's many-one transformation to clique;
* parameter v: W[SAT]-hard — weighted formula SAT ≤ positive evaluation —
  and W[SAT]-complete for prenex queries via the converse encoding.
"""

import time

from repro.benchlib import print_table
from repro.circuits import fand, fnot, for_, var
from repro.parametric.problems import WeightedFormulaInstance
from repro.reductions import (
    POSITIVE_TO_CLIQUE,
    POSITIVE_TO_UNION_OF_CQS,
    PRENEX_POSITIVE_TO_WSAT,
    WSAT_TO_POSITIVE,
    wsat_to_positive,
)


def formula_suite():
    formulas = [
        for_(fand(var("x1"), var("x2")), fand(fnot(var("x3")), var("x4"))),
        fand(for_(var("a"), var("b")), for_(var("b"), var("c"))),
        fnot(fand(var("p"), var("q"))),
        for_(var("u"), fand(var("v"), var("w"))),
    ]
    return [
        WeightedFormulaInstance(f, k) for f in formulas for k in (1, 2, 3)
    ]


def test_table1_positive_row(benchmark):
    wsat_suite = formula_suite()
    positive_suite = [wsat_to_positive(i) for i in wsat_suite]

    rows = []
    for reduction, instances in (
        (WSAT_TO_POSITIVE, wsat_suite),
        (POSITIVE_TO_UNION_OF_CQS, positive_suite),
        (POSITIVE_TO_CLIQUE, positive_suite),
        (PRENEX_POSITIVE_TO_WSAT, positive_suite),
    ):
        start = time.perf_counter()
        records = reduction.verify(instances)
        elapsed = time.perf_counter() - start
        rows.append(
            (
                reduction.name,
                len(records),
                sum(1 for r in records if r.expected),
                max(r.parameter_out for r in records),
                elapsed,
                "verified",
            )
        )

    print_table(
        ("reduction", "instances", "yes-instances", "max k'", "seconds", "status"),
        rows,
        title="Theorem 1, positive row: W[1] (q) and W[SAT] (v) evidence",
    )

    sample = positive_suite[1]
    benchmark(lambda: POSITIVE_TO_CLIQUE.solve_via_target(sample))
