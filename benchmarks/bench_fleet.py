"""FLEET — a supervised 2-worker fleet vs the single-server baseline.

The acceptance claims of the fleet layer:

* **routing is cheap** — the same threaded client flood, routed by
  ``FleetRouter`` across a 2-worker fleet, stays within a small constant
  factor of the PR 5 single-subprocess ``QueryServer`` baseline; on a
  machine with two or more cores the fleet must win outright (two
  processes evaluate on two cores; the router's cost-weighted
  least-pending placement keeps both busy);
* **availability under kill** — SIGKILLing one worker mid-flood loses
  **zero** client requests: failover re-routes the idempotent
  operations to the survivor while the supervisor respawns the victim.

Results are byte-compared against sequential ``QueryEngine(parallel=False)``
execution before anything is timed; worker spawn time is excluded from
the timings.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet.py
    PYTHONPATH=src python benchmarks/bench_fleet.py --smoke  # CI

``--smoke`` keeps workload sizes identical (the regression gate compares
leaves by path) and skips only the perf assertions.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional

from repro import QueryEngine
from repro.benchlib import (
    add_json_argument,
    emit_json_report,
    json_report_payload,
    print_table,
    speedup,
    time_thunk,
)
from repro.fleet import FleetRouter, FleetSupervisor
from repro.operations import Operation
from repro.protocol import QueryClient
from repro.relational.io import save_database_json
from repro.workloads import chain_database
from repro.workloads.queries import path_query

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_protocol_server import ServerProcess  # noqa: E402 — shared harness

WORKERS = 2
CLIENTS = 8
PER_CLIENT = 8


def build_workload(database) -> List[List[Operation]]:
    """Per client thread: one wide pair-enumerating execute (the CPU
    anchor, ~100 ms sequential) plus a hot/private decision mix — the
    protocol bench's shape, heavy enough that evaluation cost dominates
    the loopback wire and the worker count is what's being measured."""
    wide = path_query(3, head_arity=2)
    query = path_query(4, head_arity=1)
    starts = sorted({row[0] for row in database["E"].rows})
    hot = starts[:4]
    workload = []
    for client in range(CLIENTS):
        operations = [Operation.execute(wide)]
        for i in range(PER_CLIENT):
            if i % 2 == 0:
                value = hot[(i // 2) % len(hot)]
            else:
                value = starts[(client * PER_CLIENT + i) % len(starts)]
            operations.append(Operation.decide(query.decision_instance((value,))))
        workload.append(operations)
    return workload


def threaded_flood(run_lane, lanes: int):
    """Drive *lanes* client threads; returns (per-lane results, errors)."""
    results: List[Optional[List]] = [None] * lanes
    errors: List[BaseException] = []

    def lane_thread(lane: int) -> None:
        try:
            results[lane] = run_lane(lane)
        except BaseException as exc:  # noqa: BLE001 — availability verdict
            errors.append(exc)

    threads = [
        threading.Thread(target=lane_thread, args=(lane,)) for lane in range(lanes)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results, errors


def fleet_flood(router: FleetRouter, workload: List[List[Operation]]):
    def run_lane(lane: int) -> List:
        return [router.run(operation, "chain") for operation in workload[lane]]

    results, errors = threaded_flood(run_lane, len(workload))
    if errors:
        raise errors[0]
    return results


def single_server_flood(host: str, port: int, workload: List[List[Operation]]):
    def run_lane(lane: int) -> List:
        with QueryClient(host, port) as client:
            return [client.run(operation, "chain") for operation in workload[lane]]

    results, errors = threaded_flood(run_lane, len(workload))
    if errors:
        raise errors[0]
    return results


def run_fleet_vs_single(
    repeats: int, database, database_path: str
) -> Dict[str, Any]:
    workload = build_workload(database)
    sequential = QueryEngine(parallel=False)
    reference = [
        [sequential.run(operation, database) for operation in lane]
        for lane in workload
    ]

    def check(results) -> None:
        for got_list, want_list in zip(results, reference):
            for got, want in zip(got_list, want_list):
                assert got == want, "fleet diverged from sequential"
                if hasattr(want, "rows"):
                    assert got.rows == want.rows, "row order diverged"

    with FleetSupervisor({"chain": database_path}, workers=WORKERS) as supervisor:
        with FleetRouter(supervisor) as router:
            check(fleet_flood(router, workload))
            fleet_seconds, _ = time_thunk(
                lambda: fleet_flood(router, workload), repeats=repeats
            )
            routed = router.stats()["routed"]

    with ServerProcess(database_path) as server:
        check(single_server_flood(server.host, server.port, workload))
        single_seconds, _ = time_thunk(
            lambda: single_server_flood(server.host, server.port, workload),
            repeats=repeats,
        )

    return {
        "workers": WORKERS,
        "clients": CLIENTS,
        "cpus": len(os.sched_getaffinity(0)),
        "requests": CLIENTS * (PER_CLIENT + 1),
        "fleet_seconds": fleet_seconds,
        "single_server_seconds": single_seconds,
        "fleet_speedup": round(speedup(single_seconds, fleet_seconds), 2),
        "workers_used": len(routed),
    }


def run_availability_under_kill(database, database_path: str) -> Dict[str, Any]:
    """SIGKILL one worker mid-flood: count answered vs failed requests.

    Not a timing comparison (respawn backoff makes the elapsed time
    noisy by design) — the gated metric is availability: every request
    must answer, byte-identical to the sequential reference.
    """
    workload = build_workload(database)
    sequential = QueryEngine(parallel=False)
    reference = [
        [sequential.run(operation, database) for operation in lane]
        for lane in workload
    ]

    with FleetSupervisor({"chain": database_path}, workers=WORKERS) as supervisor:
        victim = supervisor.stats()["workers"][0].pid
        with FleetRouter(supervisor) as router:
            timer = threading.Timer(0.05, os.kill, args=(victim, signal.SIGKILL))
            started = time.perf_counter()
            timer.start()
            try:
                results, errors = threaded_flood(
                    lambda lane: [
                        router.run(operation, "chain")
                        for operation in workload[lane]
                    ],
                    len(workload),
                )
            finally:
                timer.cancel()
            elapsed = time.perf_counter() - started
            failovers = router.stats()["failovers"]

    answered = sum(len(lane) for lane in results if lane is not None)
    total = CLIENTS * (PER_CLIENT + 1)
    byte_identical = all(
        got == want and (not hasattr(want, "rows") or got.rows == want.rows)
        for got_list, want_list in zip(results, reference)
        if got_list is not None
        for got, want in zip(got_list, want_list)
    )
    return {
        "workers": WORKERS,
        "requests": total,
        "answered": answered,
        "failed": total - answered + len(errors),
        "availability": round(answered / total, 4),
        "byte_identical": byte_identical,
        "failovers": failovers,
        "elapsed_under_kill": round(elapsed, 4),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="skip perf assertions — workload sizes and best-of timings "
        "stay identical for the regression gate",
    )
    add_json_argument(parser)
    args = parser.parse_args(argv)
    repeats = 3

    # Narrower than bench_protocol_server's database: each lane anchors
    # on a pair-enumerating execute, and the per-request evaluation cost
    # (~100 ms) has to dominate the loopback wire for the worker-count
    # comparison to measure parallelism rather than TCP.
    database = chain_database(layers=6, width=40, p=0.22, seed=7)
    with tempfile.TemporaryDirectory() as tmp:
        database_path = os.path.join(tmp, "chain.json")
        save_database_json(database, database_path)
        comparison = run_fleet_vs_single(repeats, database, database_path)
        availability = run_availability_under_kill(database, database_path)

    print_table(
        ("workers", "clients", "requests", "fleet s", "single s", "speedup"),
        [
            (
                comparison["workers"],
                comparison["clients"],
                comparison["requests"],
                comparison["fleet_seconds"],
                comparison["single_server_seconds"],
                comparison["fleet_speedup"],
            )
        ],
        title=(
            f"{CLIENTS} threaded clients: {WORKERS}-worker fleet vs one "
            f"subprocess QueryServer (best of {repeats})"
        ),
    )
    print_table(
        ("requests", "answered", "failed", "availability", "failovers"),
        [
            (
                availability["requests"],
                availability["answered"],
                availability["failed"],
                availability["availability"],
                availability["failovers"],
            )
        ],
        title="Availability under SIGKILL of one worker mid-flood",
    )

    # Availability is the acceptance bar, smoke or not: a kill mid-flood
    # must lose nothing.
    assert availability["failed"] == 0, availability
    assert availability["availability"] == 1.0, availability
    assert availability["byte_identical"], availability
    if not args.smoke:
        if comparison["cpus"] >= 2:
            # Two workers on two cores must beat one GIL-bound server.
            assert comparison["fleet_speedup"] >= 1.1, comparison
        else:
            # One core cannot show parallelism; bound the routing +
            # failover machinery's overhead instead.
            assert comparison["fleet_speedup"] >= 0.5, comparison

    output = args.json
    if output is None and not args.smoke:
        output = "BENCH_fleet.json"
    payload = json_report_payload(
        "fleet",
        smoke=args.smoke,
        repeats=repeats,
        fleet_vs_single=comparison,
        availability_under_kill=availability,
    )
    emit_json_report(output, payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
