"""T2 — Theorem 2: acyclic ≠-queries in f(k) · n · polylog(n).

Three measurements on the paper's own workload shapes:

* n-sweep at fixed k: the Theorem 2 engine (deterministic perfect family)
  scales near-linearly in the database size while the naive engine's cost
  is driven by the assignment space;
* k-sweep at fixed n: the engine's cost grows with the number of I1
  variables through the hash-family size — the f(k) factor — while staying
  decoupled from n;
* the §5 running examples evaluate correctly and quickly.
"""

from repro.benchlib import growth_exponent, print_table, time_thunk
from repro.evaluation import NaiveEvaluator
from repro.inequalities import (
    AcyclicInequalityEvaluator,
    GreedyPerfectHashFamily,
    build_engine,
)
from repro.workloads import (
    all_examples,
    chain_database,
    path_neq_query,
)


def test_theorem2_scaling(benchmark):
    theorem2 = AcyclicInequalityEvaluator(GreedyPerfectHashFamily(seed=1))
    naive = NaiveEvaluator()

    # --- n-sweep at fixed k (x0 != x3 over a 3-step path) ---------------
    query = path_neq_query(3, 1, seed=0)
    widths = (4, 8, 16)
    t2_times, naive_times, sizes = [], [], []
    for width in widths:
        db = chain_database(layers=4, width=width, p=0.5, seed=2)
        sizes.append(db.size())
        t_t2, r_t2 = time_thunk(lambda: theorem2.evaluate(query, db), repeats=1)
        t_nv, r_nv = time_thunk(lambda: naive.evaluate(query, db), repeats=1)
        assert r_t2 == r_nv
        t2_times.append(t_t2)
        naive_times.append(t_nv)

    rows = [
        ("theorem2 (perfect family)",) + tuple(t2_times)
        + (growth_exponent(sizes, t2_times),),
        ("naive backtracking",) + tuple(naive_times)
        + (growth_exponent(sizes, naive_times),),
    ]
    print_table(
        ("engine",) + tuple(f"width={w}" for w in widths) + ("fitted exponent",),
        rows,
        title="Theorem 2, n-sweep at k=2 (path query with one != atom)",
    )

    # --- k-sweep at fixed n: hash-family size is the f(k) driver --------
    db = chain_database(layers=6, width=5, p=0.6, seed=4)
    k_rows = []
    for pairs in (1, 2, 3):
        q = path_neq_query(5, pairs, seed=1)
        engine = build_engine(q, db)
        k = len(engine.hashed_variables)
        family_size = len(
            list(
                GreedyPerfectHashFamily(seed=1).functions(
                    AcyclicInequalityEvaluator().relevant_domain(engine), k
                )
            )
        )
        seconds, result = time_thunk(lambda: theorem2.evaluate(q, db), repeats=1)
        expected = naive.evaluate(q, db)
        assert result == expected
        k_rows.append((pairs, k, family_size, seconds))
    print_table(
        ("!= atoms", "k = |V1|", "perfect-family size", "seconds"),
        k_rows,
        title="Theorem 2, k-sweep at fixed n: the f(k) factor",
    )
    assert k_rows[-1][2] >= k_rows[0][2]  # family grows with k

    # --- §5 running examples --------------------------------------------
    example_rows = []
    for name, q, db in all_examples():
        if q.comparisons:
            continue
        seconds, result = time_thunk(lambda: theorem2.evaluate(q, db), repeats=1)
        assert result == naive.evaluate(q, db)
        example_rows.append((name, result.cardinality, seconds))
    print_table(
        ("example", "answers", "seconds"),
        example_rows,
        title="Theorem 2 on the paper's §5 examples",
    )

    db = chain_database(layers=4, width=16, p=0.5, seed=2)
    benchmark(lambda: theorem2.evaluate(query, db))
