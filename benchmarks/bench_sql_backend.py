"""SQLBACK — native engine vs sqlite3 pushdown on join/count workloads.

What the pushdown PR buys and what it costs: tables are loaded once per
``Database`` (amortized across every query against it), then each channel
is a straight SQL round-trip.  The native engine keeps its columnar
indexes and adaptive planning; sqlite brings a mature join machine.  The
arbiter section runs the integrated ``QueryEngine(backend=...)`` loop and
reports which arm the per-shape latency race settled on — the decision the
engine makes unsupervised in production.

No row asserts a winner: the point of the adaptive dispatch is that either
side may win per shape and size, and the committed baseline pins the
*costs* (load, per-call latency) against regression, not the ranking.

Usage::

    PYTHONPATH=src python benchmarks/bench_sql_backend.py
    PYTHONPATH=src python benchmarks/bench_sql_backend.py --smoke  # CI

``--smoke`` shrinks the workloads and skips the sanity assertions;
``--json PATH`` writes the machine-readable report
(``BENCH_sql_backend.json`` by default in full mode).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional

from repro import QueryEngine, SqliteBackend
from repro.benchlib import (
    add_json_argument,
    emit_json_report,
    json_report_payload,
    print_table,
    speedup,
    time_thunk,
)
from repro.workloads import chain_database, path_query, star_database, star_query


def load_section(smoke: bool, repeats: int) -> Dict[str, Any]:
    """One-time table build: the cost every later pushdown amortizes."""
    layers, width = (4, 8) if smoke else (6, 24)
    database = chain_database(layers=layers, width=width, p=0.6, seed=11)

    def load_fresh():
        with SqliteBackend() as backend:
            backend.load(database)
            return backend.loaded_databases

    seconds, loaded = time_thunk(load_fresh, repeats=repeats)
    assert loaded == 1
    return {
        "rows": database.size(),
        "load_seconds": seconds,
    }


def channel_rows(smoke: bool, repeats: int) -> List[Dict[str, Any]]:
    """execute/decide/count head-to-head, warm caches on both sides."""
    layers, width = (4, 8) if smoke else (6, 20)
    # Star stays modest on purpose: SELECT DISTINCT hub enumerates the
    # full leaf cross-product (fanout/2)^arms per hub before deduping,
    # while the native side semijoins it away — the asymmetry the arbiter
    # exists to detect, but a benchmark must terminate on both arms.
    arms, fanout = (4, 6) if smoke else (4, 12)
    cases = [
        ("path3_execute", path_query(3, head_arity=1),
         chain_database(layers=layers, width=width, p=0.5, seed=7)),
        ("star_count", star_query(arms), star_database(arms, fanout, seed=3)),
    ]
    records: List[Dict[str, Any]] = []
    engine = QueryEngine(max_workers=1)
    backend = SqliteBackend()
    for name, query, database in cases:
        native_result = engine.execute(query, database)  # warm plan cache
        pushed_result = backend.execute(query, database)  # warm tables
        assert native_result == pushed_result
        native: Dict[str, float] = {}
        pushed: Dict[str, float] = {}
        native["execute"], _ = time_thunk(
            lambda: engine.execute(query, database), repeats=repeats
        )
        pushed["execute"], _ = time_thunk(
            lambda: backend.execute(query, database), repeats=repeats
        )
        native["decide"], _ = time_thunk(
            lambda: engine.decide(query, database), repeats=repeats
        )
        pushed["decide"], _ = time_thunk(
            lambda: backend.decide(query, database), repeats=repeats
        )
        native["count"], native_count = time_thunk(
            lambda: engine.count(query, database), repeats=repeats
        )
        pushed["count"], pushed_count = time_thunk(
            lambda: backend.count(query, database), repeats=repeats
        )
        assert native_count == pushed_count
        for channel in ("execute", "decide", "count"):
            records.append(
                {
                    "name": f"{name}:{channel}",
                    "answers": native_result.cardinality,
                    "native_seconds": native[channel],
                    "backend_seconds": pushed[channel],
                    "backend_speedup": round(
                        speedup(native[channel], pushed[channel]), 2
                    ),
                }
            )
    backend.close()
    engine.close()
    return records


def arbiter_section(smoke: bool) -> Dict[str, Any]:
    """The integrated loop: let the engine race the arms and settle."""
    layers, width = (4, 8) if smoke else (5, 16)
    database = chain_database(layers=layers, width=width, p=0.5, seed=19)
    query = path_query(3, head_arity=1)
    calls = 12 if smoke else 48
    backend = SqliteBackend()
    with QueryEngine(max_workers=1, backend=backend) as engine:
        reference = engine.execute(query, database)
        loop_seconds, _ = time_thunk(
            lambda: [
                (engine.execute(query, database), engine.count(query, database))
                for _ in range(calls)
            ],
            repeats=1,
        )
        stats = engine.pushdown_stats()
        settled = {
            f"{channel}": {
                "calls": info["calls"],
                "native_samples": info["native_samples"],
                "backend_samples": info["backend_samples"],
            }
            for (_, channel), info in stats.items()
        }
        assert engine.execute(query, database) == reference
    backend.close()
    return {
        "calls_per_channel": calls,
        "loop_seconds": loop_seconds,
        "channels": settled,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shrink workloads and skip the default JSON write — the CI "
        "configuration (timings stay best-of-3 for the regression gate)",
    )
    add_json_argument(parser)
    args = parser.parse_args(argv)
    repeats = 3

    load = load_section(args.smoke, repeats)
    channels = channel_rows(args.smoke, repeats)
    arbiter = arbiter_section(args.smoke)

    print_table(
        ("workload:channel", "answers", "native s", "sqlite s", "sqlite speedup"),
        [
            (
                r["name"],
                r["answers"],
                r["native_seconds"],
                r["backend_seconds"],
                r["backend_speedup"],
            )
            for r in channels
        ],
        title=f"Native vs sqlite3 pushdown (best of {repeats}, warm)",
    )
    print_table(
        ("rows", "load s"),
        [(load["rows"], load["load_seconds"])],
        title="One-time table load (fresh backend per repeat)",
    )
    print_table(
        ("channel", "calls", "native samples", "backend samples"),
        [
            (name, c["calls"], c["native_samples"], c["backend_samples"])
            for name, c in sorted(arbiter["channels"].items())
        ],
        title="Arbiter race through QueryEngine(backend=...)",
    )

    if not args.smoke:
        # Sanity, not ranking: every channel answered, and the arbiter
        # explored both arms before settling.
        for record in channels:
            assert record["native_seconds"] > 0 and record["backend_seconds"] > 0
        for info in arbiter["channels"].values():
            assert info["native_samples"] > 0
            assert info["backend_samples"] > 0

    output = args.json
    if output is None and not args.smoke:
        output = "BENCH_sql_backend.json"
    payload = json_report_payload(
        "sql_backend",
        smoke=args.smoke,
        repeats=repeats,
        load=load,
        channels=channels,
        arbiter=arbiter,
    )
    emit_json_report(output, payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
