"""PARALLEL — the sharded execution layer vs the sequential engine.

The acceptance claims of the parallel/sharding PR:

* on large acyclic workloads, the parallel engine (hash-sharded,
  bucket-centric semijoin passes; head-aware rooting; worker fan-out when
  cores exist) beats the sequential PR 2 engine by ≥2× on evaluation and
  stays ahead on decision;
* a ≥32-member same-shape batch through ``execute_batch`` runs ≥2× faster
  than sequential per-member execution (N-wide lifting through a parameter
  relation);
* on small inputs the planner keeps sharding off, so single-query latency
  matches the sequential engine (no sharding tax).

Both sides run through ``QueryEngine`` — the sequential baseline is
``QueryEngine(parallel=False)``, which is exactly the PR 2 execution path.
Result equality between the two engines is asserted for every workload.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_sharded.py
    PYTHONPATH=src python benchmarks/bench_parallel_sharded.py --smoke  # CI

``--smoke`` skips the perf assertions (CI machines are noisy; the
regression gate applies its own tolerance instead); ``--json PATH`` writes
the machine-readable report (``BENCH_parallel_sharded.json`` by default in
full mode).

The multicore CI job adds ``--assert-multicore --max-workers $(nproc)``:
that runs an extra serial-vs-threads-vs-processes comparison of the
largest workload and asserts the best real pool beats serial execution —
the ROADMAP's multicore fan-out measurement, meaningless on the 1-CPU dev
container (where every pool collapses to serial) and therefore kept out
of the committed baseline and the regression gate.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional

from repro import NaiveEvaluator, QueryEngine
from repro.benchlib import (
    add_json_argument,
    emit_json_report,
    json_report_payload,
    print_table,
    speedup,
    time_thunk,
)
from repro.operations import EXECUTE, operations_of
from repro.parallel import WorkerPool, default_worker_count
from repro.parallel.pool import PROCESSES, SERIAL, THREADS
from repro.workloads import chain_database, path_query, star_database, star_query


def acyclic_workloads() -> List[Dict[str, Any]]:
    """Large acyclic instances: inputs over the planner's shard threshold."""
    return [
        {
            "name": "path4_dense_w64",
            "query": path_query(4, head_arity=1),
            "database": chain_database(layers=5, width=64, p=0.5, seed=7),
        },
        {
            "name": "path4_selective_w48",
            "query": path_query(4, head_arity=1),
            "database": chain_database(layers=5, width=48, p=0.25, seed=7),
        },
        {
            "name": "star5_fanout300",
            "query": star_query(5),
            "database": star_database(5, 300, seed=3),
        },
    ]


def run_acyclic(repeats: int) -> List[Dict[str, Any]]:
    """Sequential vs parallel engine on each large acyclic workload."""
    records: List[Dict[str, Any]] = []
    for item in acyclic_workloads():
        query, database = item["query"], item["database"]
        sequential = QueryEngine(parallel=False)
        parallel = QueryEngine()
        # Warm both engines (plan caches, kernel indexes, shard partitions)
        # and pin result equality before timing.
        assert sequential.execute(query, database) == parallel.execute(
            query, database
        ), item["name"]
        assert sequential.decide(query, database) == parallel.decide(
            query, database
        ), item["name"]

        seq_exec, _ = time_thunk(
            lambda: sequential.execute(query, database), repeats=repeats
        )
        par_exec, _ = time_thunk(
            lambda: parallel.execute(query, database), repeats=repeats
        )
        seq_decide, _ = time_thunk(
            lambda: sequential.decide(query, database), repeats=repeats
        )
        par_decide, _ = time_thunk(
            lambda: parallel.decide(query, database), repeats=repeats
        )
        plan = parallel.plan_for(query, database)
        records.append(
            {
                "name": item["name"],
                "input_rows": sum(
                    database[name].cardinality for name in database.names()
                ),
                "shard_count": plan.shard_count,
                "sequential_execute_seconds": seq_exec,
                "parallel_execute_seconds": par_exec,
                "execute_speedup": round(speedup(seq_exec, par_exec), 2),
                "sequential_decide_seconds": seq_decide,
                "parallel_decide_seconds": par_decide,
                "decide_speedup": round(speedup(seq_decide, par_decide), 2),
            }
        )
    return records


def run_batch(repeats: int, batch_size: int = 48) -> Dict[str, Any]:
    """N-wide lifted batch vs sequential per-member execution."""
    database = chain_database(layers=5, width=48, p=0.25, seed=7)
    query = path_query(4, head_arity=1)
    starts = sorted({row[0] for row in database["E"].rows})
    starts = (starts * (batch_size // len(starts) + 1))[:batch_size]
    batch = [query.decision_instance((value,)) for value in starts]

    sequential = QueryEngine(parallel=False)
    wide = QueryEngine()
    operations = operations_of(EXECUTE, batch)
    reference = sequential.run_batch(operations, database)
    assert wide.run_batch(operations, database) == reference

    seq_seconds, _ = time_thunk(
        lambda: sequential.run_batch(operations, database), repeats=repeats
    )
    wide_seconds, _ = time_thunk(
        lambda: wide.run_batch(operations, database), repeats=repeats
    )
    return {
        "batch_size": len(batch),
        "sequential_seconds": seq_seconds,
        "wide_seconds": wide_seconds,
        "batch_speedup": round(speedup(seq_seconds, wide_seconds), 2),
    }


#: Tasks of the multicore fan-out measurement (one per seed).
_POOL_MODE_SEEDS = tuple(range(8))


def _naive_unsat_decide_task(seed: int) -> bool:
    """One compute-bound task: full backtracking search with no answer.

    A length-5 path query on a 5-layer chain is unsatisfiable, so the
    naive engine explores the entire search space — heavy CPU, trivial
    result.  The task builds its own database from the seed, so only an
    integer crosses the process boundary: this measures task fan-out, not
    serialization.  Module-level with a picklable argument, as the
    process pool requires.
    """
    database = chain_database(layers=5, width=32, p=0.3, seed=seed)
    query = path_query(5, head_arity=1)
    return NaiveEvaluator().decide(query, database)


def run_pool_modes(
    repeats: int, max_workers: Optional[int]
) -> Dict[str, Any]:
    """Serial vs thread-pool vs process-pool on compute-bound tasks.

    The ROADMAP's multicore fan-out measurement.  The committed sharded
    numbers come from bucket-level kernel work; what real cores add is
    *task* parallelism, and for pure-Python search that means the process
    pool (threads stay interpreter-bound and are reported to show exactly
    that).  Only meaningful with > 1 core — on the 1-CPU dev container
    every mode degrades to inline execution plus overhead.
    """
    workers = max_workers or default_worker_count()
    expected = [False] * len(_POOL_MODE_SEEDS)
    timings: Dict[str, float] = {}
    for mode in (SERIAL, THREADS, PROCESSES):
        pool = WorkerPool(1 if mode == SERIAL else workers, mode)
        assert (
            pool.map(_naive_unsat_decide_task, _POOL_MODE_SEEDS) == expected
        ), f"pool mode {mode} diverged"
        timings[mode], _ = time_thunk(
            lambda: pool.map(_naive_unsat_decide_task, _POOL_MODE_SEEDS),
            repeats=repeats,
        )
        pool.close()
    return {
        "workload": "naive_unsat_path5_w32",
        "tasks": len(_POOL_MODE_SEEDS),
        "workers": workers,
        "serial_seconds": timings[SERIAL],
        "threads_seconds": timings[THREADS],
        "processes_seconds": timings[PROCESSES],
        "threads_speedup": round(speedup(timings[SERIAL], timings[THREADS]), 2),
        "processes_speedup": round(
            speedup(timings[SERIAL], timings[PROCESSES]), 2
        ),
    }


def run_small_no_regression(repeats: int) -> Dict[str, Any]:
    """The PR 2 small workload: sharding must stay off and cost nothing."""
    database = chain_database(layers=5, width=16, p=0.25, seed=3)
    query = path_query(4, head_arity=1)
    sequential = QueryEngine(parallel=False)
    parallel = QueryEngine()
    assert sequential.execute(query, database) == parallel.execute(query, database)
    plan = parallel.plan_for(query, database)

    seq_seconds, _ = time_thunk(
        lambda: sequential.execute(query, database), repeats=repeats
    )
    par_seconds, _ = time_thunk(
        lambda: parallel.execute(query, database), repeats=repeats
    )
    return {
        "shard_count": plan.shard_count,
        "sequential_execute_seconds": seq_seconds,
        "parallel_execute_seconds": par_seconds,
        "parallel_over_sequential": round(
            par_seconds / max(seq_seconds, 1e-9), 3
        ),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="skip perf assertions and the default JSON write — the CI "
        "configuration (timings stay best-of-3 for the regression gate)",
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="worker budget for the pool-mode comparison (the multicore "
        "CI job passes the runner's core count)",
    )
    parser.add_argument(
        "--assert-multicore",
        action="store_true",
        help="run the serial/threads/processes comparison and assert the "
        "best real pool beats serial on the large workload (needs >1 core)",
    )
    add_json_argument(parser)
    args = parser.parse_args(argv)
    repeats = 3

    acyclic = run_acyclic(repeats)
    batch = run_batch(repeats)
    small = run_small_no_regression(repeats)
    pool_modes = (
        run_pool_modes(repeats, args.max_workers)
        if args.assert_multicore
        else None
    )

    print_table(
        (
            "workload",
            "rows",
            "shards",
            "seq exec s",
            "par exec s",
            "exec ×",
            "seq decide s",
            "par decide s",
            "decide ×",
        ),
        [
            (
                r["name"],
                r["input_rows"],
                r["shard_count"],
                r["sequential_execute_seconds"],
                r["parallel_execute_seconds"],
                r["execute_speedup"],
                r["sequential_decide_seconds"],
                r["parallel_decide_seconds"],
                r["decide_speedup"],
            )
            for r in acyclic
        ],
        title=(
            "Sharded parallel engine vs sequential engine "
            f"(best of {repeats}, {default_worker_count()} worker(s))"
        ),
    )
    print_table(
        ("batch size", "sequential s", "N-wide s", "speedup"),
        [
            (
                batch["batch_size"],
                batch["sequential_seconds"],
                batch["wide_seconds"],
                batch["batch_speedup"],
            )
        ],
        title="execute_batch: N-wide lifted execution vs per-member",
    )
    print_table(
        ("shards", "sequential s", "parallel s", "par/seq"),
        [
            (
                small["shard_count"],
                small["sequential_execute_seconds"],
                small["parallel_execute_seconds"],
                small["parallel_over_sequential"],
            )
        ],
        title="Small inputs: sharding off, no overhead",
    )

    if pool_modes is not None:
        print_table(
            (
                "tasks",
                "workers",
                "serial s",
                "threads s",
                "processes s",
                "thr ×",
                "proc ×",
            ),
            [
                (
                    pool_modes["tasks"],
                    pool_modes["workers"],
                    pool_modes["serial_seconds"],
                    pool_modes["threads_seconds"],
                    pool_modes["processes_seconds"],
                    pool_modes["threads_speedup"],
                    pool_modes["processes_speedup"],
                )
            ],
            title=(
                "Pool modes on compute-bound search tasks "
                "(multicore fan-out measurement)"
            ),
        )

    if not args.smoke:
        best_exec = max(r["execute_speedup"] for r in acyclic)
        assert best_exec >= 2.0, acyclic
        assert all(r["decide_speedup"] >= 0.8 for r in acyclic), acyclic
        assert batch["batch_speedup"] >= 2.0, batch
        assert small["shard_count"] == 1, small
        assert small["parallel_over_sequential"] <= 1.5, small
    if pool_modes is not None:
        # The multicore claim: with real cores, the best real pool beats
        # serial on the compute-bound workload (the process pool — pure
        # Python search stays interpreter-bound under threads, which the
        # report shows), and the thread pool costs no pathological
        # overhead.
        best = min(
            pool_modes["threads_seconds"], pool_modes["processes_seconds"]
        )
        assert best < pool_modes["serial_seconds"], pool_modes
        assert pool_modes["threads_seconds"] < pool_modes["serial_seconds"] * 2.0, (
            pool_modes
        )

    output = args.json
    if output is None and not args.smoke:
        output = "BENCH_parallel_sharded.json"
    sections: Dict[str, Any] = {
        "workers": default_worker_count(),
        "acyclic": acyclic,
        "batch": batch,
        "small_single_query": small,
    }
    if pool_modes is not None:
        # Only present under --assert-multicore, which the bench-gate job
        # never passes: the committed baseline comes from a 1-CPU
        # container where pool-mode timings are meaningless, so these
        # leaves must never reach the regression comparison.
        sections["pool_modes"] = pool_modes
    payload = json_report_payload(
        "parallel_sharded",
        smoke=args.smoke,
        repeats=repeats,
        **sections,
    )
    emit_json_report(output, payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
