"""T1-DATALOG — §4: Datalog with fixed arity is W[1]; arity drives the blowup.

Three measurements:

* the fixed-arity bottom-up evaluation consults only polynomially many
  conjunctive-query oracles (the W[1]-membership argument, counted);
* naive vs semi-naive fixpoint timing on reachability workloads;
* the Vardi-style arity effect: programs whose IDB arity grows with k see
  their fixpoint cost grow like n^k even at fixed database size — the
  provable "k in the exponent" of recursive languages.
"""

from repro.benchlib import print_table, time_thunk
from repro.evaluation import DatalogEvaluator, NaiveEvaluator
from repro.query import parse_program
from repro.relational import Database
from repro.reductions import evaluate_via_cq_oracle
from repro.workloads import chain_database


def arity_k_program(k: int):
    """P_k(x1..xk) ← E(x1,x2,...dummy chains): IDB arity k, n^k tuples.

    P(x1,...,xk) ← D(x1), ..., D(xk): materializes the full k-ary product
    of the unary domain relation — the minimal program exhibiting the n^k
    fixpoint size the §4 lower-bound discussion relies on.
    """
    variables = ", ".join(f"x{i}" for i in range(1, k + 1))
    body = ", ".join(f"D(x{i})" for i in range(1, k + 1))
    return parse_program(f"P({variables}) :- {body}.")


def test_datalog_fixed_arity_and_arity_blowup(benchmark):
    # --- oracle counting (fixed arity) -----------------------------------
    program = parse_program(
        "T(x, y) :- E(x, y). T(x, y) :- E(x, z), T(z, y)."
    )
    rows = []
    for width in (3, 4, 5):
        db = chain_database(layers=3, width=width, p=0.7, seed=1)
        n = len(db.domain())
        seconds, (goal, stats) = time_thunk(
            lambda: evaluate_via_cq_oracle(program, db), repeats=1
        )
        bound = stats.stages * len(program.rules) * n ** program.max_arity()
        assert stats.calls <= bound
        rows.append((n, goal.cardinality, stats.calls, bound, seconds))
    print_table(
        ("n", "goal tuples", "oracle calls", "poly bound", "seconds"),
        rows,
        title="Fixed-arity Datalog: polynomially many W[1] oracle calls",
    )

    # --- naive vs semi-naive ---------------------------------------------
    # Pin the legacy per-rule naive evaluator: these rows isolate the
    # *fixpoint strategy* and the §4 per-stage bound, not the adaptive
    # engine the default DatalogEvaluator now routes rule bodies through.
    engine = DatalogEvaluator(NaiveEvaluator())
    timing_rows = []
    for width in (4, 8, 12):
        db = chain_database(layers=5, width=width, p=0.4, seed=2)
        t_naive, r_naive = time_thunk(
            lambda: engine.evaluate(program, db, method="naive"), repeats=1
        )
        t_semi, r_semi = time_thunk(
            lambda: engine.evaluate(program, db, method="seminaive"), repeats=1
        )
        assert r_naive == r_semi
        timing_rows.append((db.size(), t_naive, t_semi))
    print_table(
        ("|d|", "naive (s)", "semi-naive (s)"),
        timing_rows,
        title="Bottom-up fixpoint engines on reachability",
    )

    # --- arity blowup (Vardi): n^k fixpoint size --------------------------
    domain = [(i,) for i in range(6)]
    db = Database.from_tuples({"D": domain})
    arity_rows = []
    for k in (1, 2, 3, 4):
        program_k = arity_k_program(k)
        seconds, result = time_thunk(
            lambda: engine.evaluate(program_k, db), repeats=1
        )
        assert result.cardinality == 6 ** k
        arity_rows.append((k, result.cardinality, seconds))
    print_table(
        ("IDB arity k", "fixpoint tuples = n^k", "seconds"),
        arity_rows,
        title="Growing IDB arity: the provable n^k behaviour (Vardi, §4)",
    )
    assert arity_rows[-1][1] > arity_rows[0][1] * 100

    db_bench = chain_database(layers=5, width=8, p=0.4, seed=2)
    benchmark(lambda: DatalogEvaluator(NaiveEvaluator()).evaluate(program, db_bench))
