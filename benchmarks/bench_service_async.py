"""SERVICE — concurrent clients on one shared engine vs isolated engines.

The acceptance claims of the async service front-end:

* **shared beats isolated** — N concurrent clients multiplexed onto one
  ``QueryService`` (one plan cache, single-flight coalescing of hot
  queries, micro-batching) finish a mixed workload faster than the same
  clients each running their own ``QueryEngine``;
* **the batching window wins on same-shape floods** — a flood of
  distinct-constant same-shape requests with the micro-batch window open
  runs through N-wide lifted executions and beats the window-off
  (one-dispatch-per-request) configuration;
* **single-flight is exact** — N identical concurrent queries cost one
  plan and one execution (asserted in every mode; this is correctness,
  not a timing).

Results are checked against sequential ``QueryEngine(parallel=False)``
execution for every scenario before anything is timed.

Usage::

    PYTHONPATH=src python benchmarks/bench_service_async.py
    PYTHONPATH=src python benchmarks/bench_service_async.py --smoke  # CI
    PYTHONPATH=src python benchmarks/bench_service_async.py --coalesce-only

``--smoke`` shrinks the workload and skips the perf assertions (the CI
regression gate applies its own tolerance); ``--coalesce-only`` runs just
the single-flight check (the dedicated CI smoke step);
``--max-workers N`` sizes the shared worker budget (the multicore CI job
passes the runner's core count); ``--assert-multicore`` enables the
assertions that only hold with real cores.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Any, Dict, List, Optional

from repro import QueryEngine, QueryService
from repro.benchlib import (
    add_json_argument,
    emit_json_report,
    json_report_payload,
    print_table,
    speedup,
    time_thunk,
)
from repro.parallel import WorkerPool, default_worker_count
from repro.parallel.pool import THREADS
from repro.workloads import chain_database, path_query


def build_workload(clients: int, per_client: int, database) -> List[List]:
    """Per client, a list of decision instances: half *hot* (identical
    across clients — what single-flight and the plan cache exist for),
    half client-specific."""
    query = path_query(4, head_arity=1)
    starts = sorted({row[0] for row in database["E"].rows})
    hot = starts[:4]
    workload = []
    for client in range(clients):
        requests = []
        for i in range(per_client):
            if i % 2 == 0:
                value = hot[(i // 2) % len(hot)]
            else:
                value = starts[(client * per_client + i) % len(starts)]
            requests.append(query.decision_instance((value,)))
        workload.append(requests)
    return workload


def engine_kwargs(max_workers: Optional[int]) -> Dict[str, Any]:
    return {} if max_workers is None else {"max_workers": max_workers}


async def shared_run(
    workload: List[List], database, window: float, max_workers: Optional[int]
) -> List[List]:
    """All clients against one QueryService (the shared configuration)."""
    async with QueryService(
        batch_window=window, **engine_kwargs(max_workers)
    ) as service:

        async def client(requests):
            return [await service.execute(q, database) for q in requests]

        return list(
            await asyncio.gather(*(client(requests) for requests in workload))
        )


async def per_client_run(
    workload: List[List], database, max_workers: Optional[int]
) -> List[List]:
    """One private engine per client: no shared plan cache, no
    coalescing, no batching — the configuration the service replaces.
    Dispatch still leaves the event loop through one thread pool, so the
    comparison isolates *sharing*, not async plumbing."""
    pool = WorkerPool(max(2, max_workers or default_worker_count()), THREADS)
    engines = [QueryEngine(**engine_kwargs(max_workers)) for _ in workload]

    async def client(engine, requests):
        results = []
        for query in requests:
            results.append(
                await asyncio.wrap_future(
                    pool.submit(engine.execute, query, database)
                )
            )
        return results

    try:
        return list(
            await asyncio.gather(
                *(
                    client(engine, requests)
                    for engine, requests in zip(engines, workload)
                )
            )
        )
    finally:
        for engine in engines:
            engine.close()
        pool.close()


def run_concurrent_clients(
    repeats: int, clients: int, per_client: int, max_workers: Optional[int]
) -> Dict[str, Any]:
    database = chain_database(layers=5, width=48, p=0.25, seed=7)
    workload = build_workload(clients, per_client, database)

    sequential = QueryEngine(parallel=False)
    reference = [
        [sequential.execute(q, database) for q in requests]
        for requests in workload
    ]
    shared = asyncio.run(shared_run(workload, database, 0.002, max_workers))
    isolated = asyncio.run(per_client_run(workload, database, max_workers))
    assert shared == reference, "shared service diverged from sequential"
    assert isolated == reference, "per-client engines diverged from sequential"

    shared_seconds, _ = time_thunk(
        lambda: asyncio.run(shared_run(workload, database, 0.002, max_workers)),
        repeats=repeats,
    )
    per_client_seconds, _ = time_thunk(
        lambda: asyncio.run(per_client_run(workload, database, max_workers)),
        repeats=repeats,
    )
    return {
        "clients": clients,
        "requests": clients * per_client,
        "shared_seconds": shared_seconds,
        "per_client_seconds": per_client_seconds,
        "shared_speedup": round(speedup(per_client_seconds, shared_seconds), 2),
    }


def run_flood(
    repeats: int, requests: int, max_workers: Optional[int]
) -> Dict[str, Any]:
    """Same-shape flood: batching window on vs off."""
    database = chain_database(layers=5, width=48, p=0.25, seed=7)
    query = path_query(4, head_arity=1)
    starts = sorted({row[0] for row in database["E"].rows})
    instances = [
        query.decision_instance((starts[i % len(starts)],))
        for i in range(requests)
    ]

    async def flood(window: float):
        async with QueryService(
            batch_window=window, **engine_kwargs(max_workers)
        ) as service:
            return list(
                await asyncio.gather(
                    *(service.execute(q, database) for q in instances)
                )
            )

    sequential = QueryEngine(parallel=False)
    reference = [sequential.execute(q, database) for q in instances]
    assert asyncio.run(flood(0.01)) == reference
    assert asyncio.run(flood(0.0)) == reference

    window_on_seconds, _ = time_thunk(
        lambda: asyncio.run(flood(0.01)), repeats=repeats
    )
    window_off_seconds, _ = time_thunk(
        lambda: asyncio.run(flood(0.0)), repeats=repeats
    )
    return {
        "requests": len(instances),
        "window_off_seconds": window_off_seconds,
        "window_on_seconds": window_on_seconds,
        "batching_speedup": round(
            speedup(window_off_seconds, window_on_seconds), 2
        ),
    }


def run_single_flight_check(requests: int = 32) -> Dict[str, Any]:
    """N identical concurrent queries → 1 plan, 1 execution.  Asserted in
    every mode — this is the coalescing contract CI smokes."""
    database = chain_database(layers=5, width=32, p=0.3, seed=11)
    query = path_query(4, head_arity=1)

    async def scenario():
        async with QueryService(batch_window=0.0) as service:
            results = await asyncio.gather(
                *(service.execute(query, database) for _ in range(requests))
            )
            return results, await service.stats()

    results, stats = asyncio.run(scenario())
    assert all(result == results[0] for result in results)
    assert stats.engine.executions == 1, stats.engine.executions
    assert stats.engine.cache.misses == 1, stats.engine.cache
    assert stats.service.coalesced == requests - 1, stats.service
    return {
        "requests": requests,
        "engine_executions": stats.engine.executions,
        "plans": stats.engine.cache.misses,
        "coalesced": stats.service.coalesced,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="skip perf assertions — the CI configuration (workload sizes "
        "and best-of-3 timings stay identical for the regression gate)",
    )
    parser.add_argument(
        "--coalesce-only",
        action="store_true",
        help="run only the single-flight/coalescing check and exit",
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="shared worker budget (the multicore CI job passes the "
        "runner's core count)",
    )
    parser.add_argument(
        "--assert-multicore",
        action="store_true",
        help="enable the assertions that need real cores (shared-service "
        "throughput at least matches isolated engines)",
    )
    add_json_argument(parser)
    args = parser.parse_args(argv)
    repeats = 3

    single_flight = run_single_flight_check()
    print_table(
        ("requests", "engine executions", "plans", "coalesced"),
        [
            (
                single_flight["requests"],
                single_flight["engine_executions"],
                single_flight["plans"],
                single_flight["coalesced"],
            )
        ],
        title="Single-flight: N identical concurrent queries → 1 plan, 1 execution",
    )
    if args.coalesce_only:
        print("\nsingle-flight/coalescing check passed")
        return 0

    # Smoke keeps every workload at full size: the regression gate
    # compares leaves by path, so shrinking a smoke workload would make
    # its timings incomparable to the committed full-run baseline and
    # silently gate nothing (the whole suite runs in a few seconds
    # anyway).  --smoke only skips the perf assertions.
    clients, per_client, flood_requests = 32, 8, 64

    concurrent = run_concurrent_clients(
        repeats, clients, per_client, args.max_workers
    )
    flood = run_flood(repeats, flood_requests, args.max_workers)

    print_table(
        ("clients", "requests", "shared s", "per-client s", "speedup"),
        [
            (
                concurrent["clients"],
                concurrent["requests"],
                concurrent["shared_seconds"],
                concurrent["per_client_seconds"],
                concurrent["shared_speedup"],
            )
        ],
        title=(
            "Concurrent clients: one shared QueryService vs "
            f"one engine per client (best of {repeats}, "
            f"workers={args.max_workers or default_worker_count()})"
        ),
    )
    print_table(
        ("requests", "window off s", "window on s", "speedup"),
        [
            (
                flood["requests"],
                flood["window_off_seconds"],
                flood["window_on_seconds"],
                flood["batching_speedup"],
            )
        ],
        title="Same-shape flood: micro-batching window on vs off",
    )

    if not args.smoke:
        assert concurrent["shared_speedup"] >= 1.2, concurrent
        assert flood["batching_speedup"] >= 1.2, flood
    if args.assert_multicore:
        # With real cores the shared service must at least match the
        # isolated configuration — it shares every cache and dedupes work.
        assert concurrent["shared_speedup"] >= 1.0, concurrent

    output = args.json
    if output is None and not args.smoke:
        output = "BENCH_service_async.json"
    payload = json_report_payload(
        "service_async",
        smoke=args.smoke,
        repeats=repeats,
        workers=args.max_workers or default_worker_count(),
        concurrent_clients=concurrent,
        flood=flood,
        single_flight=single_flight,
    )
    emit_json_report(output, payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
