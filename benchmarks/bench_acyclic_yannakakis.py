"""ACYC — §5 baseline: acyclic queries in polynomial combined complexity.

Path queries over layered databases: the Yannakakis engine's time is
near-linear in the database size regardless of the query length, while the
naive backtracking engine degrades as the path grows (its intermediate
assignment space explodes with the number of matching sub-paths).

The paper's claim reproduced here: "If Q is acyclic, this evaluation can be
done in time polynomial in the size of the input database d and the output
Q(d)" — combined with the n^q behaviour of the generic algorithm, the
acyclic engine should win by growing factors on long paths.
"""

from repro.benchlib import growth_exponent, print_table, time_thunk
from repro.evaluation import NaiveEvaluator, YannakakisEvaluator
from repro.workloads import chain_database, path_query


def test_acyclic_linear_in_n(benchmark):
    lengths = (2, 3, 4)
    widths = (4, 8, 16)

    yann = YannakakisEvaluator()
    naive = NaiveEvaluator()

    rows = []
    yann_exponents = {}
    for length in lengths:
        query = path_query(length, head_arity=1)
        yann_times = []
        naive_times = []
        sizes = []
        for width in widths:
            db = chain_database(layers=length + 1, width=width, p=0.25, seed=3)
            sizes.append(db.size())
            t_y, result_y = time_thunk(lambda: yann.evaluate(query, db), repeats=1)
            t_n, result_n = time_thunk(lambda: naive.evaluate(query, db), repeats=1)
            assert result_y == result_n
            yann_times.append(t_y)
            naive_times.append(t_n)
        yann_exponents[length] = growth_exponent(sizes, yann_times)
        rows.append(
            (f"len={length}", "yannakakis")
            + tuple(yann_times)
            + (yann_exponents[length],)
        )
        rows.append(
            (f"len={length}", "naive")
            + tuple(naive_times)
            + (growth_exponent(sizes, naive_times),)
        )

    print_table(
        ("query", "engine")
        + tuple(f"width={w}" for w in widths)
        + ("fitted exponent",),
        rows,
        title="Acyclic path queries: Yannakakis stays near-linear in |d|",
    )

    # The acyclic engine's exponent must stay small at every length
    # (sort/hash overheads allow some slack above 1.0).
    assert all(e < 2.2 for e in yann_exponents.values())

    db = chain_database(layers=5, width=16, p=0.25, seed=3)
    query = path_query(4, head_arity=1)
    benchmark(lambda: YannakakisEvaluator().evaluate(query, db))
