"""ACYC — §5 baseline: acyclic queries in polynomial combined complexity.

Path queries over layered databases: the adaptive engine (which detects
acyclicity and dispatches to Yannakakis) is near-linear in the database
size regardless of the query length, while the forced-naive baseline
degrades as the path grows (its intermediate assignment space explodes
with the number of matching sub-paths).

The paper's claim reproduced here: "If Q is acyclic, this evaluation can be
done in time polynomial in the size of the input database d and the output
Q(d)" — combined with the n^q behaviour of the generic algorithm, the
acyclic dispatch should win by growing factors on long paths.

Both rows run through ``QueryEngine.execute``: the adaptive row lets the
planner choose (it picks Yannakakis for every point — asserted), the naive
row forces ``evaluator="naive"``.
"""

from repro import QueryEngine
from repro.benchlib import growth_exponent, print_table, time_thunk
from repro.engine import YANNAKAKIS
from repro.workloads import chain_database, path_query


def test_acyclic_linear_in_n(benchmark):
    lengths = (2, 3, 4)
    widths = (4, 8, 16)

    engine = QueryEngine()

    rows = []
    engine_exponents = {}
    for length in lengths:
        query = path_query(length, head_arity=1)
        engine_times = []
        naive_times = []
        sizes = []
        for width in widths:
            db = chain_database(layers=length + 1, width=width, p=0.25, seed=3)
            sizes.append(db.size())
            assert engine.plan_for(query, db).evaluator == YANNAKAKIS
            t_e, result_e = time_thunk(
                lambda: engine.execute(query, db), repeats=1
            )
            t_n, result_n = time_thunk(
                lambda: engine.execute(query, db, evaluator="naive"), repeats=1
            )
            assert result_e == result_n
            engine_times.append(t_e)
            naive_times.append(t_n)
        engine_exponents[length] = growth_exponent(sizes, engine_times)
        rows.append(
            (f"len={length}", "engine (adaptive)")
            + tuple(engine_times)
            + (engine_exponents[length],)
        )
        rows.append(
            (f"len={length}", "forced naive")
            + tuple(naive_times)
            + (growth_exponent(sizes, naive_times),)
        )

    print_table(
        ("query", "engine")
        + tuple(f"width={w}" for w in widths)
        + ("fitted exponent",),
        rows,
        title="Acyclic path queries: adaptive dispatch stays near-linear in |d|",
    )

    # The adaptive engine's exponent must stay small at every length
    # (sort/hash overheads allow some slack above 1.0).
    assert all(e < 2.2 for e in engine_exponents.values())

    db = chain_database(layers=5, width=16, p=0.25, seed=3)
    query = path_query(4, head_arity=1)
    engine.execute(query, db)  # warm the plan cache before timing
    benchmark(lambda: engine.execute(query, db))
