"""T3 — Theorem 3: acyclic queries with comparisons are W[1]-complete.

Replays the numeric-encoding reduction on a graph suite (both parameters),
confirms the query-side structural claims (acyclic hypergraph, consistent
acyclic comparison set, strict < only), and compares the cost of answering
clique through the comparison query against the direct clique solver —
both inherit the n^Θ(k) shape, as completeness predicts.
"""

import time

from repro.benchlib import print_table, time_thunk
from repro.comparisons import is_acyclic_with_comparisons
from repro.evaluation import NaiveEvaluator
from repro.parametric.problems import CLIQUE, CliqueInstance
from repro.reductions import (
    CLIQUE_TO_COMPARISONS_Q,
    CLIQUE_TO_COMPARISONS_V,
    clique_to_comparisons,
    comparison_query,
)
from repro.workloads import cycle_graph, complete_graph, path_graph, random_graph


def suite():
    graphs = [
        complete_graph(4),
        cycle_graph(5),
        path_graph(5),
        random_graph(5, 0.5, seed=1),
        random_graph(6, 0.5, seed=2),
        random_graph(6, 0.7, seed=3),
    ]
    return [CliqueInstance(g, k) for g in graphs for k in (2, 3)]


def test_theorem3_reduction(benchmark):
    instances = suite()

    rows = []
    for reduction in (CLIQUE_TO_COMPARISONS_Q, CLIQUE_TO_COMPARISONS_V):
        start = time.perf_counter()
        records = reduction.verify(instances)
        elapsed = time.perf_counter() - start
        rows.append(
            (
                reduction.name,
                len(records),
                sum(1 for r in records if r.expected),
                max(r.parameter_out for r in records),
                elapsed,
                "verified",
            )
        )
    print_table(
        ("reduction", "instances", "yes-instances", "max k'", "seconds", "status"),
        rows,
        title="Theorem 3: clique → acyclic query with < comparisons",
    )

    # Structural claims of the construction.
    for k in (2, 3, 4):
        query = comparison_query(k)
        assert is_acyclic_with_comparisons(query)
        assert all(c.strict for c in query.comparisons)

    # Cost comparison: direct clique search vs the query route.
    cost_rows = []
    naive = NaiveEvaluator()
    for n in (5, 6, 7):
        graph = random_graph(n, 0.6, seed=n)
        source = CliqueInstance(graph, 3)
        direct_seconds, direct = time_thunk(lambda: CLIQUE.solve(source), repeats=1)
        instance = clique_to_comparisons(source)
        query_seconds, via_query = time_thunk(
            lambda: naive.decide(instance.query, instance.database), repeats=1
        )
        assert direct == via_query
        cost_rows.append((n, direct_seconds, query_seconds))
    print_table(
        ("n", "direct clique (s)", "via comparison query (s)"),
        cost_rows,
        title="Answering clique through the Theorem 3 query",
    )

    instance = clique_to_comparisons(CliqueInstance(random_graph(6, 0.6, seed=9), 3))
    benchmark(lambda: NaiveEvaluator().decide(instance.query, instance.database))
