"""T1-CQ — Theorem 1, row 1: conjunctive queries are W[1]-complete.

Replays all three reductions of the cell on instance suites, verifying the
iff in both directions and the parameter bounds, and times each leg:

* hardness:   clique ≤ CQ-evaluation (parameters q and v);
* membership: CQ-evaluation[q] ≤ weighted 2-CNF SAT;
* v-case:     CQ-evaluation[v] ≤ CQ-evaluation[q] via variable grouping.
"""

import time

from repro.benchlib import print_table
from repro.parametric.problems import CliqueInstance
from repro.reductions import (
    CLIQUE_TO_CQ_Q,
    CLIQUE_TO_CQ_V,
    CQ_TO_WEIGHTED_2CNF,
    CQ_V_TO_CQ_Q,
    clique_to_cq,
)
from repro.workloads import graph_suite, random_graph


def clique_suite():
    return [
        CliqueInstance(g, k)
        for g in graph_suite(6, seed=11)
        for k in (2, 3)
    ]


def verify_timed(reduction, instances):
    start = time.perf_counter()
    records = reduction.verify(instances)
    elapsed = time.perf_counter() - start
    positives = sum(1 for r in records if r.expected)
    worst = max(r.parameter_out for r in records)
    return len(records), positives, worst, elapsed


def test_table1_conjunctive_row(benchmark):
    suite = clique_suite()
    query_suite = [clique_to_cq(ci) for ci in suite]

    rows = []
    for reduction, instances in (
        (CLIQUE_TO_CQ_Q, suite),
        (CLIQUE_TO_CQ_V, suite),
        (CQ_TO_WEIGHTED_2CNF, query_suite),
        (CQ_V_TO_CQ_Q, query_suite),
    ):
        count, positives, worst_parameter, elapsed = verify_timed(
            reduction, instances
        )
        rows.append(
            (
                reduction.name,
                count,
                positives,
                worst_parameter,
                elapsed,
                "verified",
            )
        )

    print_table(
        ("reduction", "instances", "yes-instances", "max k'", "seconds", "status"),
        rows,
        title="Theorem 1, conjunctive row: W[1]-completeness evidence",
    )

    # Representative op for pytest-benchmark: the membership reduction on a
    # mid-size instance (transform + solve).
    big = clique_to_cq(CliqueInstance(random_graph(16, 0.4, seed=5), 3))
    benchmark(lambda: CQ_TO_WEIGHTED_2CNF.solve_via_target(big))
