"""RESILIENCE — what the safety rails cost when idle and buy when needed.

The acceptance claims of the resilience layer:

* **faults-off overhead < 5%** — the cooperative cancellation machinery
  (token activation, evaluator check-points, the deadline-aware waiter)
  costs under 5% wall-clock on a no-fault workload: against one server
  armed with a never-firing fault plan, the same TCP flood is timed
  plain and with every request carrying a far-away deadline;
* **deadlines abort on time** — an adversarial cyclic query whose naive
  search runs for many seconds answers ``deadline_exceeded`` within 2×
  its budget, wire time included;
* **retries heal injected faults** — with the server dropping
  connections on a deterministic schedule, a retrying client still gets
  byte-correct results for every request, and the healed run's cost is
  reported next to the clean run's.

Results are byte-compared against sequential ``QueryEngine(parallel=False)``
execution before anything is timed; server processes are spawned once per
configuration and excluded from the timings.

Usage::

    PYTHONPATH=src python benchmarks/bench_resilience.py
    PYTHONPATH=src python benchmarks/bench_resilience.py --smoke  # CI

``--smoke`` keeps workload sizes identical (the regression gate compares
leaves by path) and skips only the perf assertions.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import random
import statistics
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional

from bench_protocol_server import ServerProcess

from repro import Database, QueryEngine
from repro.benchlib import (
    add_json_argument,
    emit_json_report,
    json_report_payload,
    print_table,
    time_thunk,
)
from repro.protocol import AsyncQueryClient, RemoteQueryError
from repro.relational.io import save_database_json
from repro.resilience import FaultPlan, RetryPolicy
from repro.resilience.faults import FAULTS_ENV_VAR
from repro.workloads import chain_database
from repro.workloads.queries import path_query

FLOOD_REQUESTS = 48
RETRY_REQUESTS = 24
DEADLINE = 0.5
OVERHEAD_STRIDE = 2
OVERHEAD_REPEATS = 7


def build_flood(database) -> List:
    query = path_query(4, head_arity=1)
    starts = sorted({row[0] for row in database["E"].rows})
    return [
        query.decision_instance((starts[i % len(starts)],))
        for i in range(FLOOD_REQUESTS)
    ]


def build_overhead_flood(database) -> List:
    """Distinct decision instances across three path lengths.

    Coalescing can't collapse distinct instances, so the flood's engine
    work scales with its size and the timed region is long enough
    (hundreds of milliseconds) for the overhead ratio to be stable.
    """
    starts = sorted({row[0] for row in database["E"].rows})[::OVERHEAD_STRIDE]
    return [
        path_query(length, head_arity=1).decision_instance((start,))
        for length in (3, 4, 5)
        for start in starts
    ]


def adversarial_database() -> Database:
    """A dense digraph whose 6-cycle query runs for seconds under naive
    search — the workload deadlines exist to bound."""
    rng = random.Random(11)
    rows = {(rng.randrange(60), rng.randrange(60)) for _ in range(1400)}
    return Database.from_tuples({"E": sorted(rows)})


ADVERSARIAL_QUERY = (
    "Q(x1) :- E(x1, x2), E(x2, x3), E(x3, x4), E(x4, x5), E(x5, x6), E(x6, x1)."
)


async def flood_run(
    instances: List, host: str, port: int, deadline: Optional[float]
) -> List:
    async with await AsyncQueryClient.connect(host, port) as client:
        return list(
            await asyncio.gather(
                *(
                    client.execute(query, "chain", deadline=deadline)
                    for query in instances
                )
            )
        )


def run_no_fault_overhead(database, database_path: str) -> Dict[str, Any]:
    """The same flood, plain vs deadline'd, on one fault-armed server.

    The server runs the way a resilient deployment would: every fault
    site configured but none ever reached, so the per-response site
    checks are live.  Against that single process, a plain flood and a
    flood carrying a far-away deadline on every request alternate for
    ``OVERHEAD_REPEATS`` rounds and the ratio of medians is reported.

    One process on purpose: separate bare/armed server processes carry
    a per-process placement bias (cores, memory layout) of a few
    percent for their whole life, which interleaving cannot cancel and
    which would drown the machinery cost being measured here.
    """
    instances = build_overhead_flood(database)
    sequential = QueryEngine(parallel=False)
    reference = [sequential.execute(q, database) for q in instances]

    # Armed but silent: every site configured, none ever reached.
    idle_plan = FaultPlan(
        {site: {"after": 10**9} for site in ("pool.worker_crash", "server.delay")}
    )

    previous = os.environ.pop(FAULTS_ENV_VAR, None)
    os.environ[FAULTS_ENV_VAR] = idle_plan.to_env()
    try:
        server_cm = ServerProcess(database_path, "--batch-window", "0.002")
    finally:
        os.environ.pop(FAULTS_ENV_VAR, None)
        if previous is not None:
            os.environ[FAULTS_ENV_VAR] = previous
    with server_cm as server:
        configs = [("plain", None), ("guarded", 60.0)]
        samples: Dict[str, List[float]] = {"plain": [], "guarded": []}
        for label, deadline in configs:
            results = asyncio.run(
                flood_run(instances, server.host, server.port, deadline)
            )
            assert results == reference, f"{label} flood diverged from sequential"
        for _ in range(OVERHEAD_REPEATS):
            for label, deadline in configs:
                started = time.monotonic()
                asyncio.run(
                    flood_run(instances, server.host, server.port, deadline)
                )
                samples[label].append(time.monotonic() - started)
    plain_median = statistics.median(samples["plain"])
    guarded_median = statistics.median(samples["guarded"])
    return {
        "requests": len(instances),
        "plain_seconds": round(plain_median, 4),
        "guarded_seconds": round(guarded_median, 4),
        "overhead_ratio": round(guarded_median / plain_median, 3),
    }


async def deadline_probe(host: str, port: int) -> Dict[str, Any]:
    async with await AsyncQueryClient.connect(host, port) as client:
        started = time.monotonic()
        code = None
        try:
            await client.execute(ADVERSARIAL_QUERY, "chain", deadline=DEADLINE)
        except RemoteQueryError as error:
            code = error.code
        elapsed = time.monotonic() - started
        # The lane is free again: a trivial query answers promptly.
        followup_started = time.monotonic()
        await client.execute("Q(x) :- E(x, y).", "chain", deadline=30.0)
        followup = time.monotonic() - followup_started
    return {"code": code, "elapsed": elapsed, "followup_seconds": followup}


def run_deadline_abort(slow_path: str) -> Dict[str, Any]:
    with ServerProcess(slow_path) as server:
        probe = asyncio.run(deadline_probe(server.host, server.port))
    assert probe["code"] == "deadline_exceeded", probe
    return {
        "deadline_seconds": DEADLINE,
        "abort_seconds": round(probe["elapsed"], 4),
        "abort_ratio": round(probe["elapsed"] / DEADLINE, 3),
        "followup_seconds": round(probe["followup_seconds"], 4),
    }


async def retry_run(instances: List, host: str, port: int) -> Dict[str, Any]:
    client = await AsyncQueryClient.connect(
        host,
        port,
        retry=RetryPolicy(max_attempts=6, base_delay=0.02),
        rng=random.Random(17),
    )
    try:
        results = []
        for query in instances:
            results.append(await client.execute(query, "chain"))
        return {"results": results, "reconnects": client.reconnects}
    finally:
        await client.aclose()


def run_fault_recovery(repeats: int, database, database_path: str) -> Dict[str, Any]:
    """Dropped connections on a schedule vs a clean run, retries healing."""
    instances = build_flood(database)[:RETRY_REQUESTS]
    sequential = QueryEngine(parallel=False)
    reference = [sequential.execute(q, database) for q in instances]

    with ServerProcess(database_path) as server:
        clean_seconds, clean = time_thunk(
            lambda: asyncio.run(retry_run(instances, server.host, server.port)),
            repeats=repeats,
        )
        assert clean["results"] == reference, "clean retry run diverged"

    drop_plan = FaultPlan({"server.drop": {"after": 4, "times": 3}})
    previous = os.environ.pop(FAULTS_ENV_VAR, None)
    os.environ[FAULTS_ENV_VAR] = drop_plan.to_env()
    try:
        with ServerProcess(database_path) as server:
            started = time.monotonic()
            healed = asyncio.run(retry_run(instances, server.host, server.port))
            faulted_seconds = time.monotonic() - started
    finally:
        os.environ.pop(FAULTS_ENV_VAR, None)
        if previous is not None:
            os.environ[FAULTS_ENV_VAR] = previous
    assert healed["results"] == reference, "faulted retry run diverged"
    assert healed["reconnects"] >= 1, healed["reconnects"]
    return {
        "requests": len(instances),
        "injected_drops": 3,
        "clean_seconds": round(clean_seconds, 4),
        "faulted_seconds": round(faulted_seconds, 4),
        "reconnects": healed["reconnects"],
        "recovery_ratio": round(faulted_seconds / clean_seconds, 2),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="skip perf assertions — workload sizes and best-of-3 timings "
        "stay identical for the regression gate",
    )
    add_json_argument(parser)
    args = parser.parse_args(argv)
    repeats = 3

    # Overhead section: per-request evaluation (~20 ms sequential) has to
    # dominate the fixed per-request cost of the deadline waiter (one
    # ``wait_for`` + ``shield`` pair, ~0.1 ms) for the ratio to measure
    # the machinery rather than event-loop scheduling noise.
    heavy = chain_database(layers=6, width=140, p=0.18, seed=7)
    database = chain_database(layers=6, width=72, p=0.22, seed=7)
    slow_db = adversarial_database()
    with tempfile.TemporaryDirectory() as tmp:
        heavy_path = os.path.join(tmp, "heavy.json")
        database_path = os.path.join(tmp, "chain.json")
        slow_path = os.path.join(tmp, "slow.json")
        save_database_json(heavy, heavy_path)
        save_database_json(database, database_path)
        save_database_json(slow_db, slow_path)
        overhead = run_no_fault_overhead(heavy, heavy_path)
        deadline = run_deadline_abort(slow_path)
        recovery = run_fault_recovery(repeats, database, database_path)

    print_table(
        ("requests", "plain s", "guarded s", "overhead"),
        [
            (
                overhead["requests"],
                overhead["plain_seconds"],
                overhead["guarded_seconds"],
                overhead["overhead_ratio"],
            )
        ],
        title=(
            f"No-fault overhead: plain vs deadline'd flood on a fault-armed "
            f"server (median of {OVERHEAD_REPEATS})"
        ),
    )
    print_table(
        ("deadline s", "abort s", "ratio", "follow-up s"),
        [
            (
                deadline["deadline_seconds"],
                deadline["abort_seconds"],
                deadline["abort_ratio"],
                deadline["followup_seconds"],
            )
        ],
        title="Deadline abort: adversarial cyclic query over the wire",
    )
    print_table(
        ("requests", "drops", "clean s", "faulted s", "reconnects", "ratio"),
        [
            (
                recovery["requests"],
                recovery["injected_drops"],
                recovery["clean_seconds"],
                recovery["faulted_seconds"],
                recovery["reconnects"],
                recovery["recovery_ratio"],
            )
        ],
        title="Fault recovery: injected connection drops healed by client retry",
    )

    if not args.smoke:
        assert overhead["overhead_ratio"] < 1.05, overhead
        assert deadline["abort_ratio"] < 2.0, deadline

    output = args.json
    if output is None and not args.smoke:
        output = "BENCH_resilience.json"
    payload = json_report_payload(
        "resilience",
        smoke=args.smoke,
        repeats=repeats,
        no_fault_overhead=overhead,
        deadline_abort=deadline,
        fault_recovery=recovery,
    )
    emit_json_report(output, payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
