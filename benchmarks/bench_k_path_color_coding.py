"""KPATH — §5's special case: simple k-paths by color-coding.

Three solvers for the same FPT problem, all exact:

* DFS brute force over simple paths (ground truth; exponential tail);
* the Alon–Yuster–Zwick colourful-path dynamic program over our
  k-perfect hash families (f(k)·2^k·m);
* the paper's own route: the k-path ≠-query through the Theorem 2
  acyclic-processing engine.

The n-sweep at fixed k shows all FPT routes scaling gently in n while
agreeing on every instance — "our algorithm combines this technique with
acyclic query processing techniques" made concrete.
"""

from repro.benchlib import growth_exponent, print_table, time_thunk
from repro.inequalities import AcyclicInequalityEvaluator, GreedyPerfectHashFamily
from repro.parametric.problems import (
    KPathInstance,
    has_simple_path_bruteforce,
    has_simple_path_color_coding,
)
from repro.reductions import k_path_to_query_instance
from repro.workloads import random_graph


def test_k_path_three_routes(benchmark):
    k = 4
    evaluator = AcyclicInequalityEvaluator(GreedyPerfectHashFamily(seed=3))

    rows = []
    sizes, dp_times, query_times = [], [], []
    for n in (10, 16, 24, 32):
        graph = random_graph(n, 2.5 / n, seed=n)  # sparse: avg degree 2.5
        expected = has_simple_path_bruteforce(graph, k)

        t_dp, got_dp = time_thunk(
            lambda: has_simple_path_color_coding(graph, k), repeats=1
        )
        assert got_dp == expected

        instance = k_path_to_query_instance(KPathInstance(graph, k))
        t_q, got_q = time_thunk(
            lambda: evaluator.decide(instance.query, instance.database),
            repeats=1,
        )
        assert got_q == expected

        sizes.append(graph.size())
        dp_times.append(t_dp)
        query_times.append(t_q)
        rows.append((n, graph.num_edges, expected, t_dp, t_q))

    print_table(
        ("n", "edges", "k-path exists", "color-coding DP (s)",
         "Theorem 2 query route (s)"),
        rows,
        title=f"k-path (k = {k}): color-coding DP vs acyclic ≠-query",
    )

    dp_exponent = growth_exponent(sizes, dp_times)
    query_exponent = growth_exponent(sizes, query_times)
    print(f"\nfitted exponents in |G|: DP {dp_exponent:.2f}, "
          f"query route {query_exponent:.2f}")
    # Both routes must stay clearly below the n^k shape (k = 4 here).  The
    # measured exponents include the greedy perfect-family *construction*,
    # which costs C(|D|, k) per round (DESIGN.md §4 documents this
    # substitution for the asymptotically optimal splitter construction);
    # the evaluation itself is f(k)·m·2^k.
    assert dp_exponent < k
    assert query_exponent < k

    graph = random_graph(24, 2.5 / 24, seed=24)
    benchmark(lambda: has_simple_path_color_coding(graph, k))
