"""TW — extension: bounded-treewidth evaluation beyond acyclicity.

The paper's tractable island is acyclic queries; the follow-up literature
generalized it to bounded treewidth.  This bench shows the extension engine
handling *cyclic* queries (cycles: width 2) in time governed by n^(w+1)
rather than the naive n^q, and matching the naive answers exactly.
"""

from repro.benchlib import print_table, time_thunk
from repro.evaluation import NaiveEvaluator, TreewidthEvaluator
from repro.relational import Database
from repro.workloads import cycle_query, random_graph


def test_treewidth_extension(benchmark):
    naive = NaiveEvaluator()
    tw = TreewidthEvaluator()

    rows = []
    for length in (4, 6, 8):
        query = cycle_query(length)
        graph = random_graph(14, 0.35, seed=length)
        db = Database.from_tuples({"E": list(graph.directed_edges())})
        width = tw.width(query)
        t_tw, r_tw = time_thunk(lambda: tw.decide(query, db), repeats=1)
        t_nv, r_nv = time_thunk(lambda: naive.decide(query, db), repeats=1)
        assert r_tw == r_nv
        rows.append((length, width, t_tw, t_nv, r_tw))

    print_table(
        ("cycle length", "decomposition width", "treewidth engine (s)",
         "naive (s)", "nonempty"),
        rows,
        title="Bounded-treewidth evaluation of cyclic queries (width 2)",
    )
    # Width stays 2 for every cycle length: the engine's exponent is fixed
    # even as the query grows.
    assert all(row[1] == 2 for row in rows)

    query = cycle_query(6)
    graph = random_graph(14, 0.35, seed=6)
    db = Database.from_tuples({"E": list(graph.directed_edges())})
    benchmark(lambda: TreewidthEvaluator().decide(query, db))
