"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable wheels cannot be built; ``pip install -e . --no-use-pep517
--no-build-isolation`` (or plain ``pip install -e .`` on newer toolchains)
uses this shim instead.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
